// Package svto's root benchmark suite regenerates every evaluation artifact
// of the paper (one benchmark per table and figure) and measures the hot
// paths of the implementation.  Custom metrics report result quality
// (uA_leak, X_reduction) alongside timing, so `go test -bench` output both
// regenerates the paper's numbers and tracks performance.
//
// The table/figure benches default to the small circuit subset so the suite
// completes quickly; cmd/repro runs the full 11-circuit evaluation.
package svto

import (
	"bytes"
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"svto/internal/cell"
	"svto/internal/core"
	"svto/internal/device"
	"svto/internal/gen"
	"svto/internal/library"
	"svto/internal/netlist"
	"svto/internal/report"
	"svto/internal/sim"
	"svto/internal/spnet"
	"svto/internal/sta"
	"svto/internal/tech"
	"svto/internal/variation"
)

// solve runs one deterministic (Workers=1) search through the unified
// Problem.Solve entry point.
func solve(p *core.Problem, o core.Options) (*core.Solution, error) {
	o.Workers = 1
	return p.Solve(context.Background(), o)
}

// benchRunner returns a shared Runner sized for benchmarking.
var benchRunner = sync.OnceValue(func() *report.Runner {
	r := report.NewRunner()
	r.Vectors = 1000
	r.Heu2Limit = 200 * time.Millisecond
	return r
})

func mustProblem(b *testing.B, name string, opt library.Options, obj core.Objective) *core.Problem {
	b.Helper()
	p, err := benchRunner().Problem(name, opt, obj)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// --- One benchmark per table and figure ---

// BenchmarkTable1 regenerates the NAND2 trade-off table.
func BenchmarkTable1(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		rows, err := r.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("empty table 1")
		}
	}
}

// BenchmarkTable2 regenerates the library-size table.
func BenchmarkTable2(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		rows, err := r.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("empty table 2")
		}
	}
}

// BenchmarkTable3 regenerates the heuristic-comparison table on the small
// circuit subset at the paper's three penalties.
func BenchmarkTable3(b *testing.B) {
	r := benchRunner()
	penalties := []float64{0.05, 0.10, 0.25}
	var rows []report.Table3Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = r.Table3(report.SmallNames(), penalties)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) > 0 {
		x := 0.0
		for _, row := range rows {
			x += row.Cells[0].Heu1X
		}
		b.ReportMetric(x/float64(len(rows)), "X_at5%")
	}
}

// BenchmarkTable4 regenerates the traditional-technique comparison on the
// small subset at 5% penalty.
func BenchmarkTable4(b *testing.B) {
	r := benchRunner()
	var rows []report.Table4Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = r.Table4(report.SmallNames(), []float64{0.05})
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) > 0 {
		vt, h1 := 0.0, 0.0
		for _, row := range rows {
			vt += row.Cells[0].VtStateX
			h1 += row.Cells[0].Heu1X
		}
		n := float64(len(rows))
		b.ReportMetric(vt/n, "VtState_X")
		b.ReportMetric(h1/n, "Heu1_X")
	}
}

// BenchmarkTable5 regenerates the library-option comparison on the small
// subset.
func BenchmarkTable5(b *testing.B) {
	r := benchRunner()
	var rows []report.Table5Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = r.Table5(report.SmallNames(), 0.05)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) > 0 {
		var x4, x2 float64
		for _, row := range rows {
			x4 += row.X[0]
			x2 += row.X[1]
		}
		n := float64(len(rows))
		b.ReportMetric(x4/n, "4opt_X")
		b.ReportMetric(x2/n, "2opt_X")
	}
}

// BenchmarkFigure1 regenerates the inverter leakage decomposition.
func BenchmarkFigure1(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		rows, err := r.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 2 {
			b.Fatal("figure 1 should have 2 states")
		}
	}
}

// BenchmarkFigure4Stats exercises the two-tree search instrumentation the
// paper's figure 4 illustrates: a short Heuristic2 run reporting node and
// prune counts.
func BenchmarkFigure4Stats(b *testing.B) {
	p := mustProblem(b, "c432", library.DefaultOptions(), core.ObjTotal)
	var sol *core.Solution
	for i := 0; i < b.N; i++ {
		var err error
		sol, err = solve(p, core.Options{Algorithm: core.AlgHeuristic2, Penalty: 0.25, TimeLimit: 100 * time.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
	}
	if sol != nil {
		b.ReportMetric(float64(sol.Stats.StateNodes), "state_nodes")
		b.ReportMetric(float64(sol.Stats.Leaves), "leaves")
	}
}

// BenchmarkFigure5 regenerates a reduced delay-penalty sweep.
func BenchmarkFigure5(b *testing.B) {
	r := benchRunner()
	penalties := []float64{0, 0.05, 0.25, 1.0}
	var pts []report.Fig5Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = r.Figure5("c432", penalties)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(pts) == 4 {
		b.ReportMetric(pts[0].AvgUA/pts[1].Heu1UA, "X_at5%")
		b.ReportMetric(pts[0].AvgUA/pts[3].Heu1UA, "X_at100%")
	}
}

// --- Heuristics across circuit sizes ---

func benchHeu1(b *testing.B, name string) {
	p := mustProblem(b, name, library.DefaultOptions(), core.ObjTotal)
	b.ResetTimer()
	var sol *core.Solution
	for i := 0; i < b.N; i++ {
		var err error
		sol, err = solve(p, core.Options{Algorithm: core.AlgHeuristic1, Penalty: 0.05})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sol.Leak/1000, "uA_leak")
}

func BenchmarkHeuristic1C432(b *testing.B)  { benchHeu1(b, "c432") }
func BenchmarkHeuristic1C880(b *testing.B)  { benchHeu1(b, "c880") }
func BenchmarkHeuristic1C5315(b *testing.B) { benchHeu1(b, "c5315") }
func BenchmarkHeuristic1C7552(b *testing.B) { benchHeu1(b, "c7552") }

// BenchmarkSolveParallel measures the parallel state-tree search on c880:
// the same Heuristic2 work budget (MaxLeaves, machine-independent) executed
// sequentially and with one worker per CPU.  On a multicore box the
// workers/N variant should approach an N-fold wall-clock reduction while
// reporting an equal-or-better uA_leak (the shared incumbent only tightens
// pruning).
func BenchmarkSolveParallel(b *testing.B) {
	const leafBudget = 2000
	for _, tc := range []struct {
		name    string
		workers int
	}{
		{"workers=1", 1},
		{"workers=max", runtime.GOMAXPROCS(0)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			p := mustProblem(b, "c880", library.DefaultOptions(), core.ObjTotal)
			b.ResetTimer()
			var sol *core.Solution
			for i := 0; i < b.N; i++ {
				var err error
				sol, err = p.Solve(context.Background(), core.Options{
					Algorithm: core.AlgHeuristic2,
					Penalty:   0.05,
					Workers:   tc.workers,
					MaxLeaves: leafBudget,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(sol.Leak/1000, "uA_leak")
			b.ReportMetric(float64(sol.Stats.Leaves), "leaves")
		})
	}
}

// --- Ablations: the design choices the paper calls out ---

// BenchmarkAblationSortedVersions measures the gate-tree edge pre-sorting:
// without it every candidate version must be tried.
func BenchmarkAblationSortedVersions(b *testing.B) {
	for _, sorted := range []bool{true, false} {
		name := "sorted"
		if !sorted {
			name = "unsorted"
		}
		b.Run(name, func(b *testing.B) {
			p := mustProblem(b, "c880", library.DefaultOptions(), core.ObjTotal)
			defer func() { p.Ablate = core.Ablation{} }()
			p.Ablate = core.Ablation{NoSortedVersions: !sorted}
			b.ResetTimer()
			var sol *core.Solution
			for i := 0; i < b.N; i++ {
				var err error
				sol, err = solve(p, core.Options{Algorithm: core.AlgHeuristic1, Penalty: 0.05})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(sol.Stats.GateTrials), "gate_trials")
			b.ReportMetric(sol.Leak/1000, "uA_leak")
		})
	}
}

// BenchmarkAblationIncrementalSTA measures incremental retiming against
// from-scratch analysis on every gate-tree trial.
func BenchmarkAblationIncrementalSTA(b *testing.B) {
	for _, incremental := range []bool{true, false} {
		name := "incremental"
		if !incremental {
			name = "full-sta"
		}
		b.Run(name, func(b *testing.B) {
			p := mustProblem(b, "c880", library.DefaultOptions(), core.ObjTotal)
			defer func() { p.Ablate = core.Ablation{} }()
			p.Ablate = core.Ablation{FullSTA: !incremental}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := solve(p, core.Options{Algorithm: core.AlgHeuristic1, Penalty: 0.05}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationStateBounds measures the 3-valued partial-state bounds:
// without them Heuristic2 explores blindly, reaching worse states in the
// same time budget.
func BenchmarkAblationStateBounds(b *testing.B) {
	for _, bounds := range []bool{true, false} {
		name := "bounds"
		if !bounds {
			name = "no-bounds"
		}
		b.Run(name, func(b *testing.B) {
			p := mustProblem(b, "c432", library.DefaultOptions(), core.ObjTotal)
			defer func() { p.Ablate = core.Ablation{} }()
			p.Ablate = core.Ablation{NoStateBounds: !bounds}
			b.ResetTimer()
			var sol *core.Solution
			for i := 0; i < b.N; i++ {
				var err error
				sol, err = solve(p, core.Options{Algorithm: core.AlgHeuristic2, Penalty: 0.05, TimeLimit: 50 * time.Millisecond})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(sol.Leak/1000, "uA_leak")
			b.ReportMetric(float64(sol.Stats.Leaves), "leaves")
		})
	}
}

// BenchmarkExtensionNitridedOxide exercises the PMOS-gate-leakage extension
// (paper section 2: nitrided dielectrics): the library must also assign
// thick oxide to PMOS devices, and reductions shrink slightly.
func BenchmarkExtensionNitridedOxide(b *testing.B) {
	lib, err := library.Cached(tech.Nitrided(), library.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	prof, err := gen.ByName("c432")
	if err != nil {
		b.Fatal(err)
	}
	circ, err := prof.Build()
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.NewProblem(circ, lib, sta.DefaultConfig(), core.ObjTotal)
	if err != nil {
		b.Fatal(err)
	}
	avg, err := p.AverageRandomLeak(1, 500)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sol *core.Solution
	for i := 0; i < b.N; i++ {
		sol, err = solve(p, core.Options{Algorithm: core.AlgHeuristic1, Penalty: 0.05})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(avg/sol.Leak, "X_reduction")
}

// BenchmarkExtensionRefinement measures the iterated-descent extension:
// extra passes over heuristic 1's result shave off remaining leakage at
// small cost.
func BenchmarkExtensionRefinement(b *testing.B) {
	for _, refine := range []bool{false, true} {
		name := "heu1"
		if refine {
			name = "heu1+refine"
		}
		b.Run(name, func(b *testing.B) {
			p := mustProblem(b, "c880", library.DefaultOptions(), core.ObjTotal)
			var sol *core.Solution
			var err error
			for i := 0; i < b.N; i++ {
				if refine {
					sol, err = solve(p, core.Options{Algorithm: core.AlgHeuristic1, Penalty: 0.05, RefinePasses: 4})
				} else {
					sol, err = solve(p, core.Options{Algorithm: core.AlgHeuristic1, Penalty: 0.05})
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(sol.Leak/1000, "uA_leak")
		})
	}
}

// BenchmarkExtensionVariationMC measures the process-variation Monte Carlo
// (statistical standby-leakage analysis) on an optimized solution.
func BenchmarkExtensionVariationMC(b *testing.B) {
	p := mustProblem(b, "c880", library.DefaultOptions(), core.ObjTotal)
	sol, err := solve(p, core.Options{Algorithm: core.AlgHeuristic1, Penalty: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var st *variation.Stats
	for i := 0; i < b.N; i++ {
		st, err = variation.MonteCarlo(p, sol, variation.DefaultModel(), 1000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(st.MeanToNominal, "mean_to_nominal")
}

// BenchmarkExtensionTemperature sweeps the standby junction temperature
// (paper footnote 1 analyzes at room temperature): subthreshold leakage is
// exponentially temperature-sensitive while gate tunneling is not, so the
// Igate share of total leakage collapses at hot corners.
func BenchmarkExtensionTemperature(b *testing.B) {
	for _, tc := range []struct {
		name   string
		kelvin float64
	}{{"300K", 300}, {"358K", 358}, {"383K", 383}} {
		b.Run(tc.name, func(b *testing.B) {
			p := tech.AtTemperature(tc.kelvin)
			nand2 := cell.NAND(2)
			fast := nand2.FastAssignment()
			var lk cell.Leakage
			for i := 0; i < b.N; i++ {
				var err error
				lk, err = nand2.CharacterizeLeakage(p, 3, fast)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(lk.Total(), "nA_total")
			b.ReportMetric(lk.Igate/lk.Total()*100, "igate_pct")
		})
	}
}

// --- Micro-benchmarks of the substrates ---

// BenchmarkSpnetSolve measures the DC network solver on a NAND4 stack.
func BenchmarkSpnetSolve(b *testing.B) {
	p := tech.Default()
	nand4 := 4
	devs := make([]device.Device, nand4)
	refs := make([]spnet.Element, nand4)
	corners := make([]tech.Corner, nand4)
	gates := make([]float64, nand4)
	for i := range devs {
		devs[i] = device.Device{Kind: tech.NMOS, W: 4, Corner: tech.FastCorner}
		refs[i] = spnet.DevRef{Index: i, Gate: i}
		corners[i] = tech.FastCorner
	}
	n := &spnet.Network{Devices: devs, Root: spnet.Series(refs), NumGates: nand4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Solve(p, corners, gates, p.Vdd, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLibraryBuild measures a full 4-option library construction.
func BenchmarkLibraryBuild(b *testing.B) {
	p := tech.Default()
	for i := 0; i < b.N; i++ {
		if _, err := library.Build(p, library.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLogicSim measures 2-valued simulation of c7552.
func BenchmarkLogicSim(b *testing.B) {
	prof, err := gen.ByName("c7552")
	if err != nil {
		b.Fatal(err)
	}
	circ, err := prof.Build()
	if err != nil {
		b.Fatal(err)
	}
	cc, err := circ.Compile()
	if err != nil {
		b.Fatal(err)
	}
	vec := sim.RandomVectors(1, len(cc.PI), 1)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Eval(cc, vec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalSTA measures single-choice retiming on c7552.
func BenchmarkIncrementalSTA(b *testing.B) {
	p := mustProblem(b, "c7552", library.DefaultOptions(), core.ObjTotal)
	state, err := p.Timer.NewState(p.Timer.FastChoices())
	if err != nil {
		b.Fatal(err)
	}
	cells := p.Timer.Cells
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gi := i % len(cells)
		cell := cells[gi]
		ch := cell.MinLeakChoice(0)
		if i%2 == 1 {
			ch = cell.FastChoice(0)
		}
		state.SetChoice(gi, ch)
		_ = state.Delay()
	}
}

// BenchmarkAverageRandomLeak measures the 10K-vector reference column on a
// mid-size circuit.
func BenchmarkAverageRandomLeak(b *testing.B) {
	p := mustProblem(b, "c880", library.DefaultOptions(), core.ObjTotal)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.AverageRandomLeak(int64(i), 1000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBenchParse measures .bench round-trip of the multiplier.
func BenchmarkBenchParse(b *testing.B) {
	prof, err := gen.ByName("c6288")
	if err != nil {
		b.Fatal(err)
	}
	circ, err := prof.Build()
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := netlist.WriteBench(&buf, circ); err != nil {
		b.Fatal(err)
	}
	src := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := netlist.ReadBench(bytes.NewReader(src), "c6288"); err != nil {
			b.Fatal(err)
		}
	}
}
