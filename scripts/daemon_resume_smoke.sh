#!/usr/bin/env bash
# Daemon durability smoke test: start leakoptd, submit a tree-search job
# over HTTP, SIGKILL the daemon as soon as the job's first checkpoint
# snapshot lands on disk, restart the daemon on the same state directory,
# and verify the resumed job's per-gate CSV artifact is bit-identical to an
# uninterrupted Workers=1 run of the same request.
#
# Usage: scripts/daemon_resume_smoke.sh [workdir]
set -euo pipefail

cd "$(dirname "$0")/.."
WORK="${1:-$(mktemp -d)}"
mkdir -p "$WORK"
echo "workdir: $WORK"

go build -o "$WORK/leakoptd" ./cmd/leakoptd
go build -o "$WORK/leakopt" ./cmd/leakopt
go build -o "$WORK/benchgen" ./cmd/benchgen

# A seeded random circuit big enough that the search does not finish
# before the kill, small enough that the smoke stays fast.
"$WORK/benchgen" -random smoke:7:14:150 -out "$WORK"

ADDR="127.0.0.1:18080"
BASE="http://$ADDR"
DAEMON_PID=""

start_daemon() {
    local state="$1" log="$2"
    "$WORK/leakoptd" -addr "$ADDR" -state "$state" -jobs 1 \
        -checkpoint-interval 25ms >"$log" 2>&1 &
    DAEMON_PID=$!
    for _ in $(seq 1 200); do
        curl -fsS "$BASE/healthz" >/dev/null 2>&1 && return 0
        kill -0 "$DAEMON_PID" 2>/dev/null || { cat "$log"; echo "FAIL: daemon died on start"; exit 1; }
        sleep 0.05
    done
    echo "FAIL: daemon did not become healthy"; exit 1
}

stop_daemon() {
    [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
    [ -n "$DAEMON_PID" ] && wait "$DAEMON_PID" 2>/dev/null || true
    DAEMON_PID=""
}
trap stop_daemon EXIT

# The same request for both runs, built by the CLI so the smoke also
# exercises leakopt's wire-format plumbing.
"$WORK/leakopt" -in "$WORK/smoke.bench" -method heu2 -heu2sec 120 \
    -workers 1 -vectors 200 -penalty 5 \
    -dump-request "$WORK/request.json"

submit() {
    curl -fsS -X POST -H 'Content-Type: application/json' \
        --data-binary @"$WORK/request.json" "$BASE/v1/jobs" \
        | sed -n 's/.*"id": "\([0-9a-f]*\)".*/\1/p' | head -1
}

job_status() {
    curl -fsS "$BASE/v1/jobs/$1" | sed -n 's/^  "status": "\([a-z]*\)".*/\1/p' | head -1
}

wait_done() {
    local id="$1"
    for _ in $(seq 1 2400); do
        case "$(job_status "$id")" in
            done) return 0 ;;
            failed|canceled) echo "FAIL: job $id $(job_status "$id")"; exit 1 ;;
        esac
        sleep 0.05
    done
    echo "FAIL: job $id did not finish"; exit 1
}

echo "--- reference run (uninterrupted daemon)"
start_daemon "$WORK/ref-state" "$WORK/ref-daemon.log"
REF_ID=$(submit)
echo "reference job: $REF_ID"
wait_done "$REF_ID"
curl -fsS "$BASE/v1/jobs/$REF_ID/artifacts/csv" -o "$WORK/ref.csv"
stop_daemon

echo "--- crash run (SIGKILL on first job snapshot)"
start_daemon "$WORK/state" "$WORK/daemon1.log"
JOB_ID=$(submit)
echo "job: $JOB_ID"
CKPT="$WORK/state/jobs/$JOB_ID.ckpt"
KILLED=0
for _ in $(seq 1 400); do
    if [ -e "$CKPT" ]; then
        kill -9 "$DAEMON_PID"
        wait "$DAEMON_PID" 2>/dev/null || true
        DAEMON_PID=""
        KILLED=1
        break
    fi
    case "$(job_status "$JOB_ID")" in
        done|failed|canceled) break ;;
    esac
    sleep 0.025
done
echo "killed=$KILLED snapshot_present=$([ -e "$CKPT" ] && echo yes || echo no)"
stop_daemon

echo "--- restart (daemon adopts and resumes the job)"
start_daemon "$WORK/state" "$WORK/daemon2.log"
wait_done "$JOB_ID"
curl -fsS "$BASE/v1/jobs/$JOB_ID/artifacts/csv" -o "$WORK/resumed.csv"
if [ "$KILLED" = 1 ]; then
    curl -fsS "$BASE/v1/jobs/$JOB_ID" | grep -q '"resumed": true' \
        || { echo "FAIL: resumed job result lacks resume provenance"; exit 1; }
fi
stop_daemon

echo "--- comparing per-gate reports"
if ! diff -u "$WORK/ref.csv" "$WORK/resumed.csv"; then
    echo "FAIL: resumed job's CSV differs from uninterrupted run"
    exit 1
fi
echo "PASS: daemon resumed the killed job and matched the uninterrupted reference"
