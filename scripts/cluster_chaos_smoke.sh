#!/usr/bin/env bash
# Network-chaos smoke test: the same job twice, once on a clean plain
# daemon (workers=1, the deterministic reference) and once on a 2-shard
# cluster whose every RPC rides a seeded hostile network — >20% of
# requests dropped, duplicated, delayed or errored on the shard side, and
# the coordinator's own replies cut, truncated and delayed by the server
# middleware.  The cluster run must finish with CSV and Verilog artifacts
# byte-identical to the reference, and the daemon's /v1/stats must show
# the degradation (retries) that proves the chaos actually bit.
#
# Usage: scripts/cluster_chaos_smoke.sh [workdir]
set -euo pipefail

cd "$(dirname "$0")/.."
WORK="${1:-$(mktemp -d)}"
mkdir -p "$WORK"
echo "workdir: $WORK"

go build -o "$WORK/leakoptd" ./cmd/leakoptd
go build -o "$WORK/leakopt" ./cmd/leakopt
go build -o "$WORK/benchgen" ./cmd/benchgen

"$WORK/benchgen" -random chaos:7:14:150 -out "$WORK"

ADDR="127.0.0.1:18092"
BASE="http://$ADDR"
DAEMON_PID=""
SHARD_PIDS=()

# Well over the 20% combined fault floor: per request, P(any fault) =
# 1 - (1-.1)(1-.08)(1-.08)(1-.04)(1-.05) on top of a 20% delay rate.
SHARD_CHAOS="drop=0.1,dropreply=0.08,dup=0.08,trunc=0.04,err=0.05,delay=0.2,maxdelay=10ms"
SERVER_CHAOS="seed=13,dropreply=0.1,trunc=0.05,err=0.05,delay=0.2,maxdelay=10ms"

start_daemon() {
    local state="$1" log="$2"
    shift 2
    "$WORK/leakoptd" -addr "$ADDR" -state "$state" -jobs 1 -job-workers 1 \
        -checkpoint-interval 25ms "$@" >"$log" 2>&1 &
    DAEMON_PID=$!
    for _ in $(seq 1 200); do
        curl -fsS "$BASE/healthz" >/dev/null 2>&1 && return 0
        kill -0 "$DAEMON_PID" 2>/dev/null || { cat "$log"; echo "FAIL: daemon died on start"; exit 1; }
        sleep 0.05
    done
    echo "FAIL: daemon did not become healthy"; exit 1
}

start_shard() {
    local name="$1" seed="$2" log="$3"
    "$WORK/leakoptd" -shard -coordinator "$BASE" -shard-name "$name" \
        -job-workers 1 -chaos "seed=$seed,$SHARD_CHAOS" >"$log" 2>&1 &
    SHARD_PIDS+=($!)
}

wait_shards() {
    local want="$1"
    for _ in $(seq 1 200); do
        local live
        live=$(curl -fsS "$BASE/v1/stats" | grep -c '"live": true' || true)
        [ "$live" -ge "$want" ] && return 0
        sleep 0.05
    done
    echo "FAIL: $want shard(s) never registered"; exit 1
}

stop_all() {
    for pid in "${SHARD_PIDS[@]:-}"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    for pid in "${SHARD_PIDS[@]:-}"; do
        [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
    done
    SHARD_PIDS=()
    [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
    [ -n "$DAEMON_PID" ] && wait "$DAEMON_PID" 2>/dev/null || true
    DAEMON_PID=""
}
trap stop_all EXIT

"$WORK/leakopt" -in "$WORK/chaos.bench" -method heu2 -heu2sec 120 \
    -workers 1 -vectors 200 -penalty 5 \
    -dump-request "$WORK/request.json"

submit() {
    curl -fsS -X POST -H 'Content-Type: application/json' \
        --data-binary @"$WORK/request.json" "$BASE/v1/jobs" \
        | sed -n 's/.*"id": "\([0-9a-f]*\)".*/\1/p' | head -1
}

job_status() {
    curl -fsS "$BASE/v1/jobs/$1" | sed -n 's/^  "status": "\([a-z]*\)".*/\1/p' | head -1
}

wait_done() {
    local id="$1"
    for _ in $(seq 1 4800); do
        case "$(job_status "$id")" in
            done) return 0 ;;
            failed|canceled) echo "FAIL: job $id $(job_status "$id")"; exit 1 ;;
        esac
        sleep 0.05
    done
    echo "FAIL: job $id did not finish"; exit 1
}

echo "--- reference run (plain daemon, clean network)"
start_daemon "$WORK/ref-state" "$WORK/ref-daemon.log"
REF_ID=$(submit)
echo "reference job: $REF_ID"
wait_done "$REF_ID"
curl -fsS "$BASE/v1/jobs/$REF_ID/artifacts/csv" -o "$WORK/ref.csv"
curl -fsS "$BASE/v1/jobs/$REF_ID/artifacts/verilog" -o "$WORK/ref.v"
stop_all

echo "--- chaos run (2 shards, seeded lossy network on both sides)"
start_daemon "$WORK/chaos-state" "$WORK/chaos-daemon.log" -cluster -chaos-server "$SERVER_CHAOS"
start_shard lossy1 7 "$WORK/shard-lossy1.log"
start_shard lossy2 11 "$WORK/shard-lossy2.log"
wait_shards 2
JOB_ID=$(submit)
echo "chaos job: $JOB_ID"
wait_done "$JOB_ID"
curl -fsS "$BASE/v1/jobs/$JOB_ID/artifacts/csv" -o "$WORK/chaos.csv"
curl -fsS "$BASE/v1/jobs/$JOB_ID/artifacts/verilog" -o "$WORK/chaos.v"
curl -fsS "$BASE/v1/stats" -o "$WORK/chaos-stats.json"
stop_all

echo "--- verifying the chaos actually bit (shard retries in /v1/stats)"
if ! grep -E '"retries": [0-9]+' "$WORK/chaos-stats.json" | grep -qv '"retries": 0'; then
    echo "FAIL: no shard reported any retries — the fault profile injected nothing"
    cat "$WORK/chaos-stats.json"
    exit 1
fi
grep -E '"(retries|timeouts|give_ups|duplicate_completions|late_completions|lease_expiries)":' \
    "$WORK/chaos-stats.json" | sed 's/^ */    /' || true

echo "--- comparing artifacts byte-for-byte"
if ! diff -u "$WORK/ref.csv" "$WORK/chaos.csv"; then
    echo "FAIL: chaos run CSV differs from the clean reference"
    exit 1
fi
if ! diff -u "$WORK/ref.v" "$WORK/chaos.v"; then
    echo "FAIL: chaos run Verilog differs from the clean reference"
    exit 1
fi
echo "PASS: 2-shard run on a seeded lossy network matched the clean reference byte-for-byte"
