#!/usr/bin/env bash
# Crash/resume smoke test: run leakopt with checkpointing, SIGKILL it as
# soon as the first snapshot lands on disk, resume from the snapshot, and
# verify the resumed search reaches the same result as an uninterrupted
# run (identical per-gate leakage CSV).
#
# Usage: scripts/crash_resume_smoke.sh [workdir]
set -euo pipefail

cd "$(dirname "$0")/.."
WORK="${1:-$(mktemp -d)}"
mkdir -p "$WORK"
echo "workdir: $WORK"

go build -o "$WORK/leakopt" ./cmd/leakopt
go build -o "$WORK/benchgen" ./cmd/benchgen

# A seeded random circuit big enough that the search does not finish
# before the kill, small enough that the smoke stays fast.
"$WORK/benchgen" -random smoke:7:14:150 -out "$WORK"

COMMON=(-in "$WORK/smoke.bench" -method heu2 -heu2sec 30 -workers 1
        -vectors 200 -penalty 5)

echo "--- reference run (uninterrupted, checkpoint enabled)"
"$WORK/leakopt" "${COMMON[@]}" \
    -checkpoint "$WORK/ref.ckpt" -checkpoint-interval 1h \
    -report-csv "$WORK/ref.csv"
test ! -e "$WORK/ref.ckpt" || { echo "FAIL: completed run left ref.ckpt"; exit 1; }

echo "--- crash run (SIGKILL on first snapshot)"
set +e
"$WORK/leakopt" "${COMMON[@]}" \
    -checkpoint "$WORK/smoke.ckpt" -checkpoint-interval 25ms \
    -report-csv "$WORK/crash.csv" >"$WORK/crash.log" 2>&1 &
PID=$!
for _ in $(seq 1 400); do
    [ -e "$WORK/smoke.ckpt" ] && break
    kill -0 "$PID" 2>/dev/null || break
    sleep 0.025
done
if kill -0 "$PID" 2>/dev/null; then
    kill -9 "$PID"
    wait "$PID" 2>/dev/null
    KILLED=1
else
    # The search finished before we could kill it; the resume below then
    # simply verifies a fresh -resume start matches the reference.
    wait "$PID"
    KILLED=0
fi
set -e
echo "killed=$KILLED snapshot_present=$([ -e "$WORK/smoke.ckpt" ] && echo yes || echo no)"

echo "--- resume run"
"$WORK/leakopt" "${COMMON[@]}" \
    -checkpoint "$WORK/smoke.ckpt" -checkpoint-interval 1h -resume \
    -report-csv "$WORK/resumed.csv"
test ! -e "$WORK/smoke.ckpt" || { echo "FAIL: completed resume left smoke.ckpt"; exit 1; }

echo "--- comparing per-gate reports"
if ! diff -u "$WORK/ref.csv" "$WORK/resumed.csv"; then
    echo "FAIL: resumed result differs from uninterrupted run"
    exit 1
fi
echo "PASS: resumed run matches the uninterrupted reference"
