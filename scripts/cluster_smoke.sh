#!/usr/bin/env bash
# Cluster mode smoke test, three legs sharing one reference run:
#
#   ref    - plain (non-cluster) daemon, workers=1: the deterministic
#            baseline CSV artifact and optimum leakage.
#   leg 1  - coordinator + 2 worker shards; SIGKILL one shard as soon as
#            the job's first checkpoint snapshot lands.  The coordinator
#            must re-queue the dead shard's leases and finish the job on
#            the survivor, at the same optimum leakage.
#   leg 2  - coordinator + 1 worker shard; SIGKILL the coordinator on the
#            first snapshot, restart it on the same state directory.  The
#            resumed job's CSV must be byte-identical to the reference
#            (the 1-shard determinism contract).
#
# Usage: scripts/cluster_smoke.sh [workdir]
set -euo pipefail

cd "$(dirname "$0")/.."
WORK="${1:-$(mktemp -d)}"
mkdir -p "$WORK"
echo "workdir: $WORK"

go build -o "$WORK/leakoptd" ./cmd/leakoptd
go build -o "$WORK/leakopt" ./cmd/leakopt
go build -o "$WORK/benchgen" ./cmd/benchgen

# A seeded random circuit big enough that the search does not finish
# before the kills, small enough that the smoke stays fast.
"$WORK/benchgen" -random smoke:7:14:150 -out "$WORK"

ADDR="127.0.0.1:18090"
BASE="http://$ADDR"
DAEMON_PID=""
SHARD_PIDS=()

start_daemon() {
    local state="$1" log="$2"
    shift 2
    "$WORK/leakoptd" -addr "$ADDR" -state "$state" -jobs 1 -job-workers 1 \
        -checkpoint-interval 25ms "$@" >"$log" 2>&1 &
    DAEMON_PID=$!
    for _ in $(seq 1 200); do
        curl -fsS "$BASE/healthz" >/dev/null 2>&1 && return 0
        kill -0 "$DAEMON_PID" 2>/dev/null || { cat "$log"; echo "FAIL: daemon died on start"; exit 1; }
        sleep 0.05
    done
    echo "FAIL: daemon did not become healthy"; exit 1
}

start_shard() {
    local name="$1" log="$2"
    "$WORK/leakoptd" -shard -coordinator "$BASE" -shard-name "$name" \
        -job-workers 1 >"$log" 2>&1 &
    SHARD_PIDS+=($!)
}

wait_shards() {
    local want="$1"
    for _ in $(seq 1 200); do
        local live
        live=$(curl -fsS "$BASE/v1/stats" | grep -c '"live": true' || true)
        [ "$live" -ge "$want" ] && return 0
        sleep 0.05
    done
    echo "FAIL: $want shard(s) never registered"; exit 1
}

stop_all() {
    for pid in "${SHARD_PIDS[@]:-}"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    for pid in "${SHARD_PIDS[@]:-}"; do
        [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
    done
    SHARD_PIDS=()
    [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
    [ -n "$DAEMON_PID" ] && wait "$DAEMON_PID" 2>/dev/null || true
    DAEMON_PID=""
}
trap stop_all EXIT

# The same request for every leg, built by the CLI so the smoke also
# exercises leakopt's wire-format plumbing.
"$WORK/leakopt" -in "$WORK/smoke.bench" -method heu2 -heu2sec 120 \
    -workers 1 -vectors 200 -penalty 5 \
    -dump-request "$WORK/request.json"

submit() {
    curl -fsS -X POST -H 'Content-Type: application/json' \
        --data-binary @"$WORK/request.json" "$BASE/v1/jobs" \
        | sed -n 's/.*"id": "\([0-9a-f]*\)".*/\1/p' | head -1
}

job_status() {
    curl -fsS "$BASE/v1/jobs/$1" | sed -n 's/^  "status": "\([a-z]*\)".*/\1/p' | head -1
}

wait_done() {
    local id="$1"
    for _ in $(seq 1 2400); do
        case "$(job_status "$id")" in
            done) return 0 ;;
            failed|canceled) echo "FAIL: job $id $(job_status "$id")"; exit 1 ;;
        esac
        sleep 0.05
    done
    echo "FAIL: job $id did not finish"; exit 1
}

# leak_of <result.json>: the top-level optimum leakage line.
leak_of() {
    sed -n 's/^  "leak_na": \([0-9.eE+-]*\),*$/\1/p' "$1" | head -1
}

echo "--- reference run (plain daemon, no cluster)"
start_daemon "$WORK/ref-state" "$WORK/ref-daemon.log"
REF_ID=$(submit)
echo "reference job: $REF_ID"
wait_done "$REF_ID"
curl -fsS "$BASE/v1/jobs/$REF_ID/artifacts/csv" -o "$WORK/ref.csv"
curl -fsS "$BASE/v1/jobs/$REF_ID/artifacts/result" -o "$WORK/ref.json"
stop_all

echo "--- leg 1: shard death (2 shards, SIGKILL one mid-search)"
start_daemon "$WORK/kill-state" "$WORK/kill-daemon.log" -cluster
start_shard victim "$WORK/shard-victim.log"
start_shard survivor "$WORK/shard-survivor.log"
wait_shards 2
JOB_ID=$(submit)
echo "job: $JOB_ID"
CKPT="$WORK/kill-state/jobs/$JOB_ID.ckpt"
KILLED=0
for _ in $(seq 1 400); do
    if [ -e "$CKPT" ]; then
        kill -9 "${SHARD_PIDS[0]}"
        wait "${SHARD_PIDS[0]}" 2>/dev/null || true
        SHARD_PIDS[0]=""
        KILLED=1
        break
    fi
    case "$(job_status "$JOB_ID")" in
        done|failed|canceled) break ;;
    esac
    sleep 0.025
done
echo "killed=$KILLED"
wait_done "$JOB_ID"
curl -fsS "$BASE/v1/jobs/$JOB_ID/artifacts/result" -o "$WORK/kill.json"
stop_all
REF_LEAK=$(leak_of "$WORK/ref.json")
KILL_LEAK=$(leak_of "$WORK/kill.json")
echo "optimum leakage: reference=$REF_LEAK shard-death=$KILL_LEAK"
awk -v a="$REF_LEAK" -v b="$KILL_LEAK" \
    'BEGIN { d = a - b; if (d < 0) d = -d; exit !(d < 1e-6) }' \
    || { echo "FAIL: shard-death run missed the reference optimum"; exit 1; }

echo "--- leg 2: coordinator death (1 shard, SIGKILL coordinator on snapshot)"
start_daemon "$WORK/state" "$WORK/coord1.log" -cluster
start_shard solo "$WORK/shard-solo.log"
wait_shards 1
JOB_ID=$(submit)
echo "job: $JOB_ID"
CKPT="$WORK/state/jobs/$JOB_ID.ckpt"
KILLED=0
for _ in $(seq 1 400); do
    if [ -e "$CKPT" ]; then
        kill -9 "$DAEMON_PID"
        wait "$DAEMON_PID" 2>/dev/null || true
        DAEMON_PID=""
        KILLED=1
        break
    fi
    case "$(job_status "$JOB_ID")" in
        done|failed|canceled) break ;;
    esac
    sleep 0.025
done
echo "killed=$KILLED snapshot_present=$([ -e "$CKPT" ] && echo yes || echo no)"

echo "--- restart coordinator (job adopted and resumed)"
start_daemon "$WORK/state" "$WORK/coord2.log" -cluster
wait_done "$JOB_ID"
curl -fsS "$BASE/v1/jobs/$JOB_ID/artifacts/csv" -o "$WORK/resumed.csv"
if [ "$KILLED" = 1 ]; then
    curl -fsS "$BASE/v1/jobs/$JOB_ID" | grep -q '"resumed": true' \
        || { echo "FAIL: resumed job result lacks resume provenance"; exit 1; }
fi
stop_all

echo "--- comparing per-gate reports"
if ! diff -u "$WORK/ref.csv" "$WORK/resumed.csv"; then
    echo "FAIL: resumed cluster job's CSV differs from the plain daemon run"
    exit 1
fi
echo "PASS: cluster survived a shard kill and a coordinator kill, and matched the local reference"
