module svto

go 1.22
