package svto

// Cross-module integration tests: the full flow from circuit generation
// through .bench round-trip, technology mapping, library construction,
// timing and optimization.

import (
	"bytes"
	"math"
	"testing"

	"svto/internal/core"
	"svto/internal/gen"
	"svto/internal/library"
	"svto/internal/netlist"
	"svto/internal/sim"
	"svto/internal/sta"
	"svto/internal/tech"
)

// TestEndToEndBenchRoundTripOptimization checks that a generated benchmark,
// serialized to .bench and parsed back, optimizes to the identical result.
func TestEndToEndBenchRoundTripOptimization(t *testing.T) {
	prof, err := gen.ByName("c432")
	if err != nil {
		t.Fatal(err)
	}
	orig, err := prof.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := netlist.WriteBench(&buf, orig); err != nil {
		t.Fatal(err)
	}
	parsed, err := netlist.ReadBench(&buf, "c432")
	if err != nil {
		t.Fatal(err)
	}

	lib, err := library.Cached(tech.Default(), library.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	optimize := func(c *netlist.Circuit) *core.Solution {
		p, err := core.NewProblem(c, lib, sta.DefaultConfig(), core.ObjTotal)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := solve(p, core.Options{Algorithm: core.AlgHeuristic1, Penalty: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		return sol
	}
	a, b := optimize(orig), optimize(parsed)
	if math.Abs(a.Leak-b.Leak) > 1e-9 {
		t.Errorf("round-tripped circuit optimizes differently: %.3f vs %.3f nA", a.Leak, b.Leak)
	}
	if math.Abs(a.Delay-b.Delay) > 1e-9 {
		t.Errorf("round-tripped circuit times differently: %.3f vs %.3f ps", a.Delay, b.Delay)
	}
	for i := range a.State {
		if a.State[i] != b.State[i] {
			t.Fatalf("sleep vectors differ at input %d", i)
		}
	}
}

// TestSolutionSimulationConsistency verifies that the solution's recorded
// per-gate choices are consistent with a fresh simulation of its sleep
// vector: each gate's choice leakage equals the version leakage at the
// template state reached through the choice's pin permutation.
func TestSolutionSimulationConsistency(t *testing.T) {
	prof, err := gen.ByName("c880")
	if err != nil {
		t.Fatal(err)
	}
	circ, err := prof.Build()
	if err != nil {
		t.Fatal(err)
	}
	lib, err := library.Cached(tech.Default(), library.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewProblem(circ, lib, sta.DefaultConfig(), core.ObjTotal)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := solve(p, core.Options{Algorithm: core.AlgHeuristic1, Penalty: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := sim.Eval(p.CC, sol.State)
	if err != nil {
		t.Fatal(err)
	}
	for gi := range p.CC.Gates {
		g := &p.CC.Gates[gi]
		instState := sim.GateState(g, vals)
		ch := sol.Choices[gi]
		// Route the instance state through the permutation.
		tplState := uint(0)
		for pin := range g.In {
			if instState>>uint(pin)&1 == 1 {
				tplState |= 1 << uint(ch.TemplatePin(pin))
			}
		}
		if tplState != ch.TemplateState {
			t.Fatalf("gate %d: template state %0b != recorded %0b", gi, tplState, ch.TemplateState)
		}
		if got := ch.Version.Leak[tplState]; math.Abs(got-ch.Leak) > 1e-9 {
			t.Fatalf("gate %d: leak mismatch %.3f vs %.3f", gi, got, ch.Leak)
		}
	}
}

// TestTechniqueLadder checks the paper's headline ordering on a mid-size
// circuit: average > state-only > Vt+state > proposed, and the proposed
// method's delay stays within its budget while all-slow roughly doubles
// delay.
func TestTechniqueLadder(t *testing.T) {
	prof, err := gen.ByName("c1908")
	if err != nil {
		t.Fatal(err)
	}
	circ, err := prof.Build()
	if err != nil {
		t.Fatal(err)
	}
	lib, err := library.Cached(tech.Default(), library.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewProblem(circ, lib, sta.DefaultConfig(), core.ObjTotal)
	if err != nil {
		t.Fatal(err)
	}
	if r := p.Dmax / p.Dmin; r < 1.5 || r > 2.5 {
		t.Errorf("Dmax/Dmin = %.2f, want ~2", r)
	}
	avg, err := p.AverageRandomLeak(7, 2000)
	if err != nil {
		t.Fatal(err)
	}
	so, err := solve(p, core.Options{Algorithm: core.AlgStateOnly})
	if err != nil {
		t.Fatal(err)
	}
	vtOpt := library.DefaultOptions()
	vtOpt.VtOnly = true
	vtLib, err := library.Cached(tech.Default(), vtOpt)
	if err != nil {
		t.Fatal(err)
	}
	pvt, err := core.NewProblem(circ, vtLib, sta.DefaultConfig(), core.ObjIsubOnly)
	if err != nil {
		t.Fatal(err)
	}
	vt, err := solve(pvt, core.Options{Algorithm: core.AlgHeuristic1, Penalty: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	h1, err := solve(p, core.Options{Algorithm: core.AlgHeuristic1, Penalty: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if !(avg > so.Leak*0.9 && so.Leak > vt.Leak && vt.Leak > h1.Leak) {
		t.Errorf("technique ladder violated: avg=%.0f state=%.0f vt=%.0f heu1=%.0f",
			avg, so.Leak, vt.Leak, h1.Leak)
	}
	if h1.Delay > p.Budget(0.05)+1e-6 {
		t.Errorf("heu1 delay %.1f exceeds budget %.1f", h1.Delay, p.Budget(0.05))
	}
	// Headline factor: >= 3X at 5% on this profile.
	if x := avg / h1.Leak; x < 3 {
		t.Errorf("reduction %.1fX below expectation", x)
	}
}

// TestLibraryPoliciesEndToEnd runs one circuit through all four Table-5
// library policies and checks the paper's finding that the reduced
// libraries stay close to the full one.
func TestLibraryPoliciesEndToEnd(t *testing.T) {
	prof, err := gen.ByName("c432")
	if err != nil {
		t.Fatal(err)
	}
	circ, err := prof.Build()
	if err != nil {
		t.Fatal(err)
	}
	policies := []library.Options{library.DefaultOptions(), library.TwoOption()}
	u4 := library.DefaultOptions()
	u4.UniformStack = true
	u2 := library.TwoOption()
	u2.UniformStack = true
	policies = append(policies, u4, u2)

	var leaks []float64
	for _, opt := range policies {
		lib, err := library.Cached(tech.Default(), opt)
		if err != nil {
			t.Fatal(err)
		}
		p, err := core.NewProblem(circ, lib, sta.DefaultConfig(), core.ObjTotal)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := solve(p, core.Options{Algorithm: core.AlgHeuristic1, Penalty: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		leaks = append(leaks, sol.Leak)
	}
	base := leaks[0]
	for i, l := range leaks {
		if l > base*1.9 || l < base*0.6 {
			t.Errorf("policy %d leak %.0f too far from 4-option %.0f", i, l, base)
		}
	}
}
