// Command leakopt computes a standby-mode sleep vector and per-gate Vt/Tox
// cell-version assignment for a combinational circuit, minimizing total
// standby leakage under a delay constraint (the paper's core flow).
//
// Usage:
//
//	leakopt -bench c880 -penalty 5 -method heu2 -heu2sec 5 -workers 4
//	leakopt -in mydesign.bench -penalty 10 -method heu1 -show-vector
//	leakopt -bench c432 -method compare -timing -mc 2000
//	leakopt -bench c880 -method heu2 -checkpoint c880.ckpt
//	leakopt -bench c880 -method heu2 -checkpoint c880.ckpt -resume
//
// Ctrl-C interrupts a running search and reports the best solution found
// so far.  With -checkpoint the interrupted (or killed and restarted)
// search also leaves a crash-safe snapshot behind that -resume continues
// from.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"svto/internal/core"
	"svto/internal/gen"
	"svto/internal/library"
	"svto/internal/netlist"
	"svto/internal/power"
	"svto/internal/seq"
	"svto/internal/sta"
	"svto/internal/standby"
	"svto/internal/tech"
	"svto/internal/techmap"
	"svto/internal/variation"
	"svto/internal/verilog"
)

func main() {
	var (
		benchName = flag.String("bench", "", "built-in benchmark name (c432..c7552, alu64)")
		inFile    = flag.String("in", "", "read an ISCAS .bench netlist instead")
		penalty   = flag.Float64("penalty", 5, "delay penalty in percent of the max penalty range")
		method    = flag.String("method", "heu1", "heuristic1 | heuristic2 | exact | state-only | vt-state | compare (heu1/heu2 accepted as aliases)")
		heu2sec   = flag.Float64("heu2sec", 5, "heuristic 2 time budget (seconds)")
		workers   = flag.Int("workers", 1, "parallel search workers (0 = all CPUs)")
		portfolio = flag.Bool("portfolio", false, "race stochastic explorer strategies against the tree search (needs -workers > 1)")
		maxLeaves = flag.Int64("max-leaves", 0, "stop after this many complete states (0 = unlimited)")
		ckPath    = flag.String("checkpoint", "", "write crash-safe search snapshots to this file (heu2/exact)")
		ckEvery   = flag.Duration("checkpoint-interval", 30*time.Second, "periodic snapshot cadence for -checkpoint")
		ckResume  = flag.Bool("resume", false, "resume the search from the -checkpoint snapshot")
		progress  = flag.Duration("progress", 0, "print search progress at this interval (e.g. 2s; 0 = off)")
		libOpt    = flag.String("library", "4opt", "4opt | 2opt | 4opt-uniform | 2opt-uniform")
		vectors   = flag.Int("vectors", 10000, "random vectors for the reference average")
		showVec   = flag.Bool("show-vector", false, "print the sleep vector")
		showStats = flag.Bool("stats", false, "print search statistics")
		reportTop = flag.Int("report", 0, "print a leakage report with the top N gates")
		csvOut    = flag.String("report-csv", "", "write the per-gate leakage report as CSV")
		emitWrap  = flag.String("emit-standby", "", "write the circuit with sleep-vector gating inserted (.bench)")
		fuse      = flag.Bool("fuse", false, "run the AOI/OAI peephole fusion pass before optimizing")
		seqMode   = flag.Bool("seq", false, "treat -in as a sequential .bench (DFFs cut at the register boundary)")
		timing    = flag.Bool("timing", false, "print the critical path of the optimized circuit")
		mcSamples = flag.Int("mc", 0, "run an N-sample process-variation Monte Carlo on the result")
		mcSigma   = flag.Float64("mc-sigma", 30, "threshold-voltage sigma for -mc, millivolts")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
		submitURL = flag.String("submit", "", "run remotely: submit the job to a leakoptd base URL (e.g. http://localhost:8080)")
		dumpReq   = flag.String("dump-request", "", "print the job request JSON for these flags and exit ('-' for stdout)")
	)
	flag.Parse()

	// The CLI keeps the historical heu1/heu2 shorthands, but everything past
	// flag parsing speaks the canonical core.Algorithm.String names — one
	// parser (core.ParseAlgorithm) for the local flow, -submit and the wire.
	methodName := normalizeMethod(*method)

	if *submitURL != "" || *dumpReq != "" {
		if *seqMode || *mcSamples > 0 || *timing || *ckPath != "" || *ckResume {
			fatal(fmt.Errorf("-submit/-dump-request run the portable job flow; -seq, -mc, -timing and -checkpoint are local-only"))
		}
		req, err := buildRequest(*benchName, *inFile, methodName, *libOpt, *penalty, *heu2sec,
			*workers, *maxLeaves, *vectors, *reportTop, *fuse, *emitWrap != "", *portfolio)
		if err != nil {
			fatal(err)
		}
		if *dumpReq != "" {
			if err := dumpRequest(req, *dumpReq); err != nil {
				fatal(err)
			}
			return
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if err := submit(ctx, *submitURL, req, *csvOut, *emitWrap, *showStats); err != nil {
			fatal(err)
		}
		return
	}

	if (*ckPath != "" || *ckResume) && methodName != "heuristic2" && methodName != "exact" {
		fatal(fmt.Errorf("-checkpoint/-resume require -method heuristic2 or exact (got %q)", *method))
	}
	if *ckResume && *ckPath == "" {
		fatal(fmt.Errorf("-resume requires -checkpoint"))
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fatal(err)
		}
		cpuProfFile = f
	}
	memProfPath = *memProf
	defer stopProfiles()

	var seqCut *seq.Circuit
	var circ *netlist.Circuit
	var err error
	if *seqMode {
		if *inFile == "" {
			fatal(fmt.Errorf("-seq requires -in"))
		}
		f, ferr := os.Open(*inFile)
		if ferr != nil {
			fatal(ferr)
		}
		seqCut, err = seq.ReadBench(f, strings.TrimSuffix(filepath.Base(*inFile), ".bench"))
		f.Close()
		if err != nil {
			fatal(err)
		}
		circ, err = techmap.Map(seqCut.Comb)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("sequential cut: %d PIs, %d POs, %d flip-flops\n", seqCut.PIs, seqCut.POs, seqCut.NumState())
	} else {
		circ, err = loadCircuit(*benchName, *inFile)
		if err != nil {
			fatal(err)
		}
	}
	if *fuse {
		before := len(circ.Gates)
		circ, err = techmap.Optimize(circ)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("fusion pass: %d -> %d gates\n", before, len(circ.Gates))
	}
	opt, err := libraryOptions(*libOpt)
	if err != nil {
		fatal(err)
	}
	lib, err := library.Cached(tech.Default(), opt)
	if err != nil {
		fatal(err)
	}
	p, err := core.NewProblem(circ, lib, sta.DefaultConfig(), core.ObjTotal)
	if err != nil {
		fatal(err)
	}
	st, err := circ.Stats()
	if err != nil {
		fatal(err)
	}
	pen := *penalty / 100
	fmt.Printf("circuit %s: %d inputs, %d outputs, %d gates, depth %d\n",
		circ.Name, st.Inputs, st.Outputs, st.Gates, st.Depth)
	fmt.Printf("delay: Dmin=%.0fps Dmax=%.0fps budget(%.0f%%)=%.0fps\n",
		p.Dmin, p.Dmax, *penalty, p.Budget(pen))
	avg, err := p.AverageRandomLeak(2004, *vectors)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("average leakage over %d random vectors: %.2f µA\n", *vectors, avg/1000)

	report := func(prob *core.Problem, sol *core.Solution) {
		if seqCut != nil {
			piBits, ffBits, err := seqCut.SleepVector(sol.State)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("sleep vector: %d primary-input bits, %d flip-flop bits (load via modified FFs):\n", len(piBits), len(ffBits))
			for i, ff := range seqCut.FFs {
				v := 0
				if ffBits[i] {
					v = 1
				}
				fmt.Printf("  %s=%d", ff.Out, v)
			}
			fmt.Println()
		}
		if *emitWrap != "" {
			wrapped, err := standby.Wrap(circ, sol.State)
			if err != nil {
				fatal(err)
			}
			f, err := os.Create(*emitWrap)
			if err != nil {
				fatal(err)
			}
			if err := netlist.WriteBench(f, wrapped); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s (+%d gating gates)\n", *emitWrap, standby.Overhead(len(circ.Inputs)))
		}
		if *timing {
			st, err := prob.Timer.NewState(sol.Choices)
			if err != nil {
				fatal(err)
			}
			fmt.Println()
			fmt.Print(st.FormatCritical(st.Slacks(prob.Budget(pen))))
		}
		if *mcSamples > 0 {
			model := variation.DefaultModel()
			model.SigmaVtMV = *mcSigma
			st, err := variation.MonteCarlo(prob, sol, model, *mcSamples)
			if err != nil {
				fatal(err)
			}
			fmt.Println()
			fmt.Print(st.Format())
		}
		if *reportTop <= 0 && *csvOut == "" {
			return
		}
		rep, err := power.Analyze(prob, sol)
		if err != nil {
			fatal(err)
		}
		if *reportTop > 0 {
			fmt.Println()
			fmt.Print(rep.Format(*reportTop))
		}
		if *csvOut != "" {
			f, err := os.Create(*csvOut)
			if err != nil {
				fatal(err)
			}
			if err := rep.WriteCSV(f); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *csvOut)
		}
	}

	run := func(label string, f func() (*core.Solution, error)) *core.Solution {
		sol, err := f()
		if err != nil {
			if sol == nil {
				fatal(err)
			}
			// Degraded run (e.g. every worker died): report the incumbent
			// but make the failure visible.
			fmt.Fprintf(os.Stderr, "leakopt: warning: %v (reporting best solution found)\n", err)
		}
		for _, wf := range sol.Stats.WorkerFailures {
			fmt.Fprintf(os.Stderr, "leakopt: warning: search worker %d died: %s\n", wf.Worker, wf.Err)
		}
		note := ""
		if sol.Stats.Interrupted {
			note = " (interrupted)"
		}
		fmt.Printf("%-12s leak=%8.2f µA  (%.1fX)  Isub=%7.2f µA  delay=%6.0f ps  [%v]%s\n",
			label, sol.Leak/1000, avg/sol.Leak, sol.Isub/1000, sol.Delay, sol.Stats.Runtime.Round(time.Millisecond), note)
		if *showStats {
			fmt.Printf("             state nodes %d, gate trials %d, leaves %d (cache hits %d), pruned %d\n",
				sol.Stats.StateNodes, sol.Stats.GateTrials, sol.Stats.Leaves, sol.Stats.LeafCacheHits, sol.Stats.Pruned)
			if sol.Stats.BatchSweeps > 0 {
				fmt.Printf("             batch occupancy %.1f lanes/sweep\n",
					float64(sol.Stats.BatchLanes)/float64(sol.Stats.BatchSweeps))
			}
			if sol.Stats.RelaxBounds > 0 {
				fmt.Printf("             relax probes %d (pruned %d)\n",
					sol.Stats.RelaxBounds, sol.Stats.RelaxPruned)
			}
			if sol.Stats.PortfolioWins > 0 {
				fmt.Printf("             portfolio wins %d\n", sol.Stats.PortfolioWins)
			}
			if sol.Stats.Resumed {
				fmt.Printf("             resumed run: %v of runtime carried from prior run(s)\n",
					sol.Stats.PriorRuntime.Round(time.Millisecond))
			}
			if sol.Stats.CheckpointWrites > 0 || sol.Stats.CheckpointErrors > 0 {
				fmt.Printf("             checkpoint writes %d (errors %d)\n",
					sol.Stats.CheckpointWrites, sol.Stats.CheckpointErrors)
			}
		}
		if *showVec {
			fmt.Print("             sleep vector: ")
			for i, v := range sol.State {
				if v {
					fmt.Print("1")
				} else {
					fmt.Print("0")
				}
				if i%8 == 7 {
					fmt.Print(" ")
				}
			}
			fmt.Println()
		}
		return sol
	}

	// Ctrl-C cancels the search; the engine returns the incumbent.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	solve := func(prob *core.Problem, alg core.Algorithm, limit time.Duration) func() (*core.Solution, error) {
		o := core.Options{
			Algorithm: alg,
			Penalty:   pen,
			TimeLimit: limit,
			Workers:   *workers,
			MaxLeaves: *maxLeaves,
			Portfolio: *portfolio,
		}
		if *ckPath != "" && (alg == core.AlgHeuristic2 || alg == core.AlgExact) {
			o.Checkpoint = core.CheckpointOptions{
				Path:     *ckPath,
				Interval: *ckEvery,
				Resume:   *ckResume,
			}
		}
		if *progress > 0 {
			o.ProgressInterval = *progress
			o.Progress = func(pr core.Progress) {
				fmt.Printf("  [%6.1fs] best=%8.2f µA  nodes=%d leaves=%d pruned=%d\n",
					pr.Elapsed.Seconds(), pr.BestLeak/1000, pr.StateNodes, pr.Leaves, pr.Pruned)
			}
		}
		return func() (*core.Solution, error) { return prob.Solve(ctx, o) }
	}

	heu2Limit := time.Duration(*heu2sec * float64(time.Second))
	switch methodName {
	case "vt-state":
		vtOpt := opt
		vtOpt.VtOnly = true
		vtLib, err := library.Cached(tech.Default(), vtOpt)
		if err != nil {
			fatal(err)
		}
		pvt, err := core.NewProblem(circ, vtLib, sta.DefaultConfig(), core.ObjIsubOnly)
		if err != nil {
			fatal(err)
		}
		report(pvt, run("vt+state[12]", solve(pvt, core.AlgHeuristic1, 0)))
	case "compare":
		run("state-only", solve(p, core.AlgStateOnly, 0))
		run("heuristic-1", solve(p, core.AlgHeuristic1, 0))
		report(p, run("heuristic-2", solve(p, core.AlgHeuristic2, heu2Limit)))
	default:
		alg, err := core.ParseAlgorithm(methodName)
		if err != nil {
			fatal(fmt.Errorf("unknown method %q", *method))
		}
		limit := time.Duration(0)
		if alg == core.AlgHeuristic2 {
			limit = heu2Limit
		}
		report(p, run(methodLabel(alg), solve(p, alg, limit)))
	}
}

// normalizeMethod maps the CLI's historical heu1/heu2 shorthands onto the
// canonical core.Algorithm.String names; every other method string passes
// through unchanged.
func normalizeMethod(m string) string {
	switch m {
	case "heu1":
		return "heuristic1"
	case "heu2":
		return "heuristic2"
	}
	return m
}

// methodLabel is the report label of an algorithm (the historical hyphenated
// spellings, kept stable for script consumers).
func methodLabel(alg core.Algorithm) string {
	switch alg {
	case core.AlgHeuristic1:
		return "heuristic-1"
	case core.AlgHeuristic2:
		return "heuristic-2"
	default:
		return alg.String()
	}
}

func loadCircuit(benchName, inFile string) (*netlist.Circuit, error) {
	switch {
	case benchName != "" && inFile != "":
		return nil, fmt.Errorf("use only one of -bench and -in")
	case benchName != "":
		prof, err := gen.ByName(benchName)
		if err != nil {
			return nil, err
		}
		return prof.Build()
	case inFile != "":
		f, err := os.Open(inFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if strings.HasSuffix(inFile, ".v") {
			return verilog.Read(f, strings.TrimSuffix(filepath.Base(inFile), ".v"))
		}
		return netlist.ReadBench(f, inFile)
	default:
		return nil, fmt.Errorf("one of -bench or -in is required")
	}
}

func libraryOptions(name string) (library.Options, error) {
	switch name {
	case "4opt":
		return library.DefaultOptions(), nil
	case "2opt":
		return library.TwoOption(), nil
	case "4opt-uniform":
		o := library.DefaultOptions()
		o.UniformStack = true
		return o, nil
	case "2opt-uniform":
		o := library.TwoOption()
		o.UniformStack = true
		return o, nil
	default:
		return library.Options{}, fmt.Errorf("unknown library policy %q", name)
	}
}

// Profile state lives at package scope so fatal (which exits without
// running deferred calls) can still flush profiles.
var (
	cpuProfFile *os.File
	memProfPath string
)

// stopProfiles flushes any active CPU profile and writes the heap profile.
// Safe to call more than once.
func stopProfiles() {
	if cpuProfFile != nil {
		pprof.StopCPUProfile()
		cpuProfFile.Close()
		cpuProfFile = nil
	}
	if memProfPath != "" {
		path := memProfPath
		memProfPath = ""
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "leakopt:", err)
			return
		}
		runtime.GC() // materialize up-to-date heap statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "leakopt:", err)
		}
		f.Close()
	}
}

func fatal(err error) {
	stopProfiles()
	fmt.Fprintln(os.Stderr, "leakopt:", err)
	os.Exit(1)
}
