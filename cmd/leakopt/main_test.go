package main

import (
	"os"
	"path/filepath"
	"testing"

	"svto/internal/library"
)

func TestLibraryOptions(t *testing.T) {
	cases := []struct {
		name    string
		points  int
		uniform bool
	}{
		{"4opt", 4, false},
		{"2opt", 2, false},
		{"4opt-uniform", 4, true},
		{"2opt-uniform", 2, true},
	}
	for _, tc := range cases {
		opt, err := libraryOptions(tc.name)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if opt.TradeoffPoints != tc.points || opt.UniformStack != tc.uniform {
			t.Errorf("%s: got %+v", tc.name, opt)
		}
		if err := opt.Validate(); err != nil {
			t.Errorf("%s: invalid options: %v", tc.name, err)
		}
	}
	if _, err := libraryOptions("frob"); err == nil {
		t.Error("unknown policy accepted")
	}
	_ = library.DefaultOptions() // keep the import anchored to intent
}

func TestLoadCircuit(t *testing.T) {
	if _, err := loadCircuit("", ""); err == nil {
		t.Error("no source accepted")
	}
	if _, err := loadCircuit("c432", "x.bench"); err == nil {
		t.Error("both sources accepted")
	}
	if _, err := loadCircuit("c9999", ""); err == nil {
		t.Error("unknown benchmark accepted")
	}
	c, err := loadCircuit("c432", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 177 {
		t.Errorf("c432 gates = %d", len(c.Gates))
	}

	dir := t.TempDir()
	bench := filepath.Join(dir, "t.bench")
	if err := os.WriteFile(bench, []byte("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if c, err := loadCircuit("", bench); err != nil || len(c.Gates) != 1 {
		t.Errorf("bench load failed: %v", err)
	}
	v := filepath.Join(dir, "t.v")
	src := "module t (a, y); input a; output y; not u (y, a); endmodule\n"
	if err := os.WriteFile(v, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if c, err := loadCircuit("", v); err != nil || len(c.Gates) != 1 {
		t.Errorf("verilog load failed: %v", err)
	}
	if _, err := loadCircuit("", filepath.Join(dir, "missing.bench")); err == nil {
		t.Error("missing file accepted")
	}
}
