package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"svto/internal/core"
	"svto/internal/jobs"
	"svto/pkg/svto"
)

// buildRequest assembles the daemon wire request from the same flags the
// local flow uses, so `leakopt -submit` and a local run describe identical
// work.  The -in netlist is inlined into the spec: the request is
// self-contained and the daemon never needs the client's filesystem.
// The method has already been normalized by normalizeMethod, so validation
// is exactly core.ParseAlgorithm — the same parser the daemon applies on
// the other side of the wire.
func buildRequest(benchName, inFile, method, libOpt string, penalty, heu2sec float64,
	workers int, maxLeaves int64, vectors, reportTop int, fuse, standby, portfolio bool) (svto.Request, error) {

	coreAlg, err := core.ParseAlgorithm(method)
	if err != nil {
		return svto.Request{}, fmt.Errorf("method %q cannot run remotely (use heuristic1|heuristic2|exact|state-only)", method)
	}
	var limitSec float64
	if coreAlg == core.AlgHeuristic2 {
		limitSec = heu2sec
	}
	alg := svto.Algorithm(coreAlg.String())

	req := svto.Request{
		Design:  svto.DesignSpec{Benchmark: benchName, Fuse: fuse},
		Library: svto.LibrarySpec{Policy: svto.Library(libOpt)},
		Search: svto.SearchSpec{
			Algorithm:       alg,
			Penalty:         penalty / 100,
			TimeLimitSec:    limitSec,
			Workers:         workers,
			MaxLeaves:       maxLeaves,
			Portfolio:       portfolio,
			BaselineVectors: vectors,
		},
		Output: svto.OutputSpec{ReportTop: reportTop, StandbyBench: standby},
	}
	if inFile != "" {
		data, err := os.ReadFile(inFile)
		if err != nil {
			return svto.Request{}, err
		}
		name := filepath.Base(inFile)
		if strings.HasSuffix(inFile, ".v") {
			req.Design.Verilog = string(data)
			req.Design.Name = strings.TrimSuffix(name, ".v")
		} else {
			req.Design.Bench = string(data)
			req.Design.Name = strings.TrimSuffix(name, ".bench")
		}
	}
	return req, nil
}

// dumpRequest writes the wire JSON for req to path ("-" = stdout), so a
// request can be inspected, version-controlled, or curl'd by hand.
func dumpRequest(req svto.Request, path string) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(req)
}

// submit POSTs the request to a leakoptd instance, polls the job to
// completion (canceling it server-side if ctx is interrupted), prints the
// result summary (plus -stats search counters when showStats is set), and
// downloads any requested artifacts.
func submit(ctx context.Context, baseURL string, req svto.Request, csvOut, emitWrap string, showStats bool) error {
	baseURL = strings.TrimRight(baseURL, "/")
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	post, err := http.NewRequestWithContext(ctx, http.MethodPost,
		baseURL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return err
	}
	post.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(post)
	if err != nil {
		return err
	}
	v, err := decodeView(resp)
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	fmt.Printf("submitted job %s (%s)\n", v.ID, v.Status)

	for !v.Status.Terminal() {
		select {
		case <-ctx.Done():
			// Best-effort server-side cancel so an abandoned client does
			// not leave the job burning budget.
			cancel, _ := http.NewRequest(http.MethodPost, baseURL+"/v1/jobs/"+v.ID+"/cancel", nil)
			http.DefaultClient.Do(cancel)
			return fmt.Errorf("interrupted; canceled job %s", v.ID)
		case <-time.After(500 * time.Millisecond):
		}
		get, err := http.NewRequestWithContext(ctx, http.MethodGet,
			baseURL+"/v1/jobs/"+v.ID, nil)
		if err != nil {
			return err
		}
		resp, err := http.DefaultClient.Do(get)
		if err != nil {
			return err
		}
		if v, err = decodeView(resp); err != nil {
			return err
		}
		if p := v.Progress; p != nil && v.Status == jobs.StatusRunning {
			fmt.Printf("  [%6.1fs] best=%8.2f µA  nodes=%d leaves=%d pruned=%d\n",
				p.Elapsed.Seconds(), p.BestLeakNA/1000, p.StateNodes, p.Leaves, p.Pruned)
		}
	}
	if v.Status != jobs.StatusDone {
		return fmt.Errorf("job %s: %s: %s", v.ID, v.Status, v.Error)
	}

	var res svto.Result
	if err := json.Unmarshal(v.Result, &res); err != nil {
		return fmt.Errorf("result document: %w", err)
	}
	note := ""
	if res.Interrupted {
		note = " (interrupted)"
	}
	if res.Resumed {
		note += fmt.Sprintf(" (resumed, %v prior)", res.PriorRuntime.Round(time.Millisecond))
	}
	ratio := ""
	if x := res.ReductionX(); x > 0 {
		ratio = fmt.Sprintf("  (%.1fX)", x)
	}
	fmt.Printf("%-12s leak=%8.2f µA%s  Isub=%7.2f µA  delay=%6.0f ps  [%v]%s\n",
		string(req.Search.Algorithm), res.LeakNA/1000, ratio, res.IsubNA/1000,
		res.DelayPS, res.Stats.Runtime.Round(time.Millisecond), note)
	if showStats {
		// Same shape the local -stats print uses, fed from the daemon's
		// result document — which in cluster mode carries the counters
		// merged across every shard.
		fmt.Printf("             state nodes %d, gate trials %d, leaves %d (cache hits %d), pruned %d\n",
			res.Stats.StateNodes, res.Stats.GateTrials, res.Stats.Leaves,
			res.Stats.LeafCacheHits, res.Stats.Pruned)
		if res.Stats.BatchSweeps > 0 {
			fmt.Printf("             batch occupancy %.1f lanes/sweep\n",
				float64(res.Stats.BatchLanes)/float64(res.Stats.BatchSweeps))
		}
		if res.Stats.RelaxBounds > 0 {
			fmt.Printf("             relax probes %d (pruned %d)\n",
				res.Stats.RelaxBounds, res.Stats.RelaxPruned)
		}
		if res.Stats.PortfolioWins > 0 {
			fmt.Printf("             portfolio wins %d\n", res.Stats.PortfolioWins)
		}
		if res.Resumed {
			fmt.Printf("             resumed run: %v of runtime carried from prior run(s)\n",
				res.PriorRuntime.Round(time.Millisecond))
		}
		if res.Stats.CheckpointWrites > 0 || res.Stats.CheckpointErrors > 0 {
			fmt.Printf("             checkpoint writes %d (errors %d)\n",
				res.Stats.CheckpointWrites, res.Stats.CheckpointErrors)
		}
		printClusterHealth(ctx, baseURL)
	}
	for _, wf := range res.WorkerFailures {
		fmt.Fprintf(os.Stderr, "leakopt: warning: %s\n", wf)
	}

	fetch := func(kind, path string) error {
		get, err := http.NewRequestWithContext(ctx, http.MethodGet,
			fmt.Sprintf("%s/v1/jobs/%s/artifacts/%s", baseURL, v.ID, kind), nil)
		if err != nil {
			return err
		}
		resp, err := http.DefaultClient.Do(get)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			raw, _ := io.ReadAll(resp.Body)
			return fmt.Errorf("artifact %s: %s: %s", kind, resp.Status, raw)
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if _, err := io.Copy(f, resp.Body); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
		return nil
	}
	if csvOut != "" {
		if err := fetch("csv", csvOut); err != nil {
			return err
		}
	}
	if emitWrap != "" {
		if err := fetch("standby-bench", emitWrap); err != nil {
			return err
		}
	}
	return nil
}

// printClusterHealth fetches GET /v1/stats and, when the daemon runs in
// cluster mode, prints per-shard and coordinator transport degradation —
// retries, timeouts, re-registrations, duplicate completions — so a lossy
// network is visible right where the result is read.  Best-effort: a
// daemon without the endpoint (or not in cluster mode) prints nothing.
func printClusterHealth(ctx context.Context, baseURL string) {
	get, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/stats", nil)
	if err != nil {
		return
	}
	resp, err := http.DefaultClient.Do(get)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	var stats jobs.StatsView
	if json.NewDecoder(resp.Body).Decode(&stats) != nil || stats.Cluster == nil {
		return
	}
	cl := stats.Cluster
	for _, s := range cl.Shards {
		live := "live"
		if !s.Live {
			live = "lost"
		}
		line := fmt.Sprintf("             shard %-12s %s, %d workers", s.Name, live, s.Workers)
		if h := s.Health; h != nil && (h.Retries > 0 || h.GiveUps > 0 || h.Reregistrations > 0 || h.RestartsSeen > 0) {
			line += fmt.Sprintf("; retries %d (timeouts %d), give-ups %d, re-registrations %d, restarts seen %d",
				h.Retries, h.Timeouts, h.GiveUps, h.Reregistrations, h.RestartsSeen)
		}
		fmt.Println(line)
	}
	h := cl.Health
	if h.DuplicateCompletions > 0 || h.LateCompletions > 0 || h.LeaseExpiries > 0 || h.StaleNonceRequests > 0 {
		fmt.Printf("             coordinator: duplicate completions %d, late completions %d, lease expiries %d, stale-nonce rejections %d\n",
			h.DuplicateCompletions, h.LateCompletions, h.LeaseExpiries, h.StaleNonceRequests)
	}
}

// decodeView reads a jobs.View response, surfacing the daemon's error
// document on non-2xx statuses.
func decodeView(resp *http.Response) (jobs.View, error) {
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return jobs.View{}, err
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			return jobs.View{}, fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return jobs.View{}, fmt.Errorf("%s: %s", resp.Status, raw)
	}
	var v jobs.View
	if err := json.Unmarshal(raw, &v); err != nil {
		return jobs.View{}, err
	}
	return v, nil
}
