// Command libgen builds the dual-Vt/dual-Tox standby cell library and
// reports its contents: per-state trade-off versions (paper Table 1 /
// Figure 3), version counts (Table 2), and the inverter leakage
// decomposition (Figure 1).
//
// Usage:
//
//	libgen -table1 -table2 -fig1
//	libgen -versions NOR2
//	libgen -dump
package main

import (
	"flag"
	"fmt"
	"os"

	"svto/internal/liberty"
	"svto/internal/library"
	"svto/internal/report"
	"svto/internal/tech"
)

func main() {
	var (
		table1   = flag.Bool("table1", false, "NAND2 trade-off table")
		table2   = flag.Bool("table2", false, "library version counts")
		fig1     = flag.Bool("fig1", false, "inverter leakage components")
		versions = flag.String("versions", "", "list the versions and per-state choices of one cell")
		dump     = flag.Bool("dump", false, "dump every cell's versions")
		libOut   = flag.String("liberty", "", "export the library in Liberty (.lib) format to this file")
		twoOpt   = flag.Bool("2opt", false, "use the reduced 2-option library")
		uniform  = flag.Bool("uniform", false, "force uniform-stack assignments")
		nitrided = flag.Bool("nitrided", false, "use the nitrided-oxide process (PMOS gate leakage)")
	)
	flag.Parse()
	if !(*table1 || *table2 || *fig1 || *dump) && *versions == "" && *libOut == "" {
		flag.Usage()
		os.Exit(2)
	}

	p := tech.Default()
	if *nitrided {
		p = tech.Nitrided()
	}
	opt := library.DefaultOptions()
	if *twoOpt {
		opt = library.TwoOption()
	}
	opt.UniformStack = *uniform

	r := report.NewRunner()
	r.Tech = p

	if *table1 {
		rows, err := r.Table1()
		if err != nil {
			fatal(err)
		}
		fmt.Println(report.FormatTable1(rows))
	}
	if *table2 {
		rows, err := r.Table2()
		if err != nil {
			fatal(err)
		}
		fmt.Println(report.FormatTable2(rows))
	}
	if *fig1 {
		rows, err := r.Figure1()
		if err != nil {
			fatal(err)
		}
		fmt.Println(report.FormatFigure1(rows))
	}
	if *libOut != "" {
		lib, err := library.Cached(p, opt)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*libOut)
		if err != nil {
			fatal(err)
		}
		if err := liberty.Write(f, liberty.Export(lib)); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d cells)\n", *libOut, lib.TotalVersions()+len(lib.Names))
	}
	if *versions != "" || *dump {
		lib, err := library.Cached(p, opt)
		if err != nil {
			fatal(err)
		}
		names := lib.Names
		if *versions != "" {
			if lib.Cell(*versions) == nil {
				fatal(fmt.Errorf("no cell %q in library", *versions))
			}
			names = []string{*versions}
		}
		for _, name := range names {
			dumpCell(lib, name)
		}
		fmt.Printf("total versions in library: %d\n", lib.TotalVersions())
	}
}

func dumpCell(lib *library.Library, name string) {
	c := lib.Cell(name)
	tpl := c.Template
	fmt.Printf("%s: %d inputs, %d transistors, %d versions (policy: %d-option",
		name, tpl.NumInputs, tpl.NumDevices(), len(c.Versions), lib.Opt.TradeoffPoints)
	if lib.Opt.UniformStack {
		fmt.Print(", uniform stacks")
	}
	fmt.Println(")")
	for _, v := range c.Versions {
		fmt.Printf("  %-12s up=%v down=%v maxDelayFactor=%.2f\n", v.Name, v.Assign.Up, v.Assign.Down, v.MaxFactor)
	}
	for s := 0; s < tpl.NumStates(); s++ {
		fmt.Printf("  state %0*b:", tpl.NumInputs, s)
		for _, ch := range c.Choices[s] {
			perm := ""
			if ch.Perm != nil {
				perm = fmt.Sprintf(" perm%v", ch.Perm)
			}
			fmt.Printf("  [%s %s%s %.1fnA]", ch.Kind, ch.Version.Name, perm, ch.Leak)
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "libgen:", err)
	os.Exit(1)
}
