// Command repro regenerates the paper's evaluation: Tables 1-5 and Figures
// 1 and 5 of "Simultaneous State, Vt and Tox Assignment for Total Standby
// Power Minimization" (DATE 2004).
//
// Usage:
//
//	repro -all                 # everything, full benchmark set
//	repro -quick -table3       # small circuit subset, fewer vectors
//	repro -table4 -circuits c432,c880
//	repro -fig5 -fig5circuit c7552
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"svto/internal/report"
)

func main() {
	var (
		all     = flag.Bool("all", false, "run every table and figure")
		table1  = flag.Bool("table1", false, "Table 1: NAND2 version trade-offs")
		table2  = flag.Bool("table2", false, "Table 2: library sizes")
		table3  = flag.Bool("table3", false, "Table 3: heuristic comparison")
		table4  = flag.Bool("table4", false, "Table 4: comparison with traditional techniques")
		table5  = flag.Bool("table5", false, "Table 5: library options")
		fig1    = flag.Bool("fig1", false, "Figure 1: inverter leakage components")
		fig5    = flag.Bool("fig5", false, "Figure 5: leakage vs delay penalty")
		quick   = flag.Bool("quick", false, "small circuit subset and fewer vectors")
		vectors = flag.Int("vectors", 10000, "random vectors for the average-leakage column")
		heu2sec = flag.Float64("heu2sec", 2, "heuristic 2 time budget per circuit and penalty (seconds)")
		circs   = flag.String("circuits", "", "comma-separated circuit subset (default: all 11)")
		fig5c   = flag.String("fig5circuit", "c7552", "circuit for the figure 5 sweep")
		csvDir  = flag.String("csv", "", "also write each result as CSV into this directory")
	)
	flag.Parse()
	if !(*all || *table1 || *table2 || *table3 || *table4 || *table5 || *fig1 || *fig5) {
		flag.Usage()
		os.Exit(2)
	}

	r := report.NewRunner()
	r.Vectors = *vectors
	r.Heu2Limit = time.Duration(*heu2sec * float64(time.Second))
	names := report.AllNames()
	if *quick {
		names = report.SmallNames()
		if r.Vectors > 1000 {
			r.Vectors = 1000
		}
	}
	if *circs != "" {
		names = strings.Split(*circs, ",")
	}
	penalties := []float64{0.05, 0.10, 0.25}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fail(err)
		}
	}
	csvOut := func(name string, write func(w io.Writer) error) {
		if *csvDir == "" {
			return
		}
		path := filepath.Join(*csvDir, name)
		if err := report.WriteCSVFile(path, write); err != nil {
			fail(err)
		}
		fmt.Printf("(csv: %s)\n\n", path)
	}

	if *all || *table1 {
		rows, err := r.Table1()
		if err != nil {
			fail(err)
		}
		fmt.Println(report.FormatTable1(rows))
		csvOut("table1.csv", func(w io.Writer) error { return report.Table1CSV(w, rows) })
	}
	if *all || *table2 {
		rows, err := r.Table2()
		if err != nil {
			fail(err)
		}
		fmt.Println(report.FormatTable2(rows))
		csvOut("table2.csv", func(w io.Writer) error { return report.Table2CSV(w, rows) })
	}
	if *all || *fig1 {
		rows, err := r.Figure1()
		if err != nil {
			fail(err)
		}
		fmt.Println(report.FormatFigure1(rows))
	}
	if *all || *table3 {
		rows, err := r.Table3(names, penalties)
		if err != nil {
			fail(err)
		}
		fmt.Println(report.FormatTable3(rows, penalties))
		csvOut("table3.csv", func(w io.Writer) error { return report.Table3CSV(w, rows) })
	}
	if *all || *table4 {
		rows, err := r.Table4(names, penalties)
		if err != nil {
			fail(err)
		}
		fmt.Println(report.FormatTable4(rows, penalties))
		csvOut("table4.csv", func(w io.Writer) error { return report.Table4CSV(w, rows) })
	}
	if *all || *table5 {
		rows, err := r.Table5(names, 0.05)
		if err != nil {
			fail(err)
		}
		fmt.Println(report.FormatTable5(rows, 0.05))
		csvOut("table5.csv", func(w io.Writer) error { return report.Table5CSV(w, rows) })
	}
	if *all || *fig5 {
		sweep := []float64{0, 0.02, 0.05, 0.10, 0.15, 0.25, 0.40, 0.60, 0.80, 1.0}
		pts, err := r.Figure5(*fig5c, sweep)
		if err != nil {
			fail(err)
		}
		fmt.Println(report.FormatFigure5(*fig5c, pts))
		csvOut("figure5.csv", func(w io.Writer) error { return report.Figure5CSV(w, *fig5c, pts) })
	}
}
