package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"svto/internal/gen"
	"svto/internal/dist"
	"svto/internal/jobs"
	"svto/internal/netlist"
	"svto/pkg/svto"
)

func benchText(t *testing.T, name string, seed int64, inputs, gates int) string {
	t.Helper()
	circ, err := gen.RandomLogic(name, seed, inputs, gates)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := netlist.WriteBench(&buf, circ); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func postJob(t *testing.T, url string, req svto.Request) jobs.View {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %s: %s", resp.Status, raw)
	}
	var v jobs.View
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatal(err)
	}
	return v
}

func getJob(t *testing.T, url, id string) jobs.View {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get %s: %s: %s", id, resp.Status, raw)
	}
	var v jobs.View
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatal(err)
	}
	return v
}

func waitDone(t *testing.T, url, id string, timeout time.Duration) jobs.View {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		v := getJob(t, url, id)
		if v.Status == jobs.StatusDone {
			return v
		}
		if v.Status.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s: status %q (err %q)", id, v.Status, v.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func fetchArtifact(t *testing.T, url, id, kind string) []byte {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/artifacts/%s", url, id, kind))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("artifact %s/%s: %s: %s", id, kind, resp.Status, raw)
	}
	return raw
}

func TestJobAPIEndToEnd(t *testing.T) {
	mgr, err := jobs.Open(jobs.Config{StateDir: t.TempDir(), Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	srv := httptest.NewServer(newHandler(mgr, nil, dist.ChaosConfig{}, false))
	defer srv.Close()

	if resp, err := http.Get(srv.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp, err)
	}

	// Malformed submissions fail at the boundary.
	for _, body := range []string{"{not json", `{"unknown_field": 1}`, `{}`} {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %q: %s, want 400", body, resp.Status)
		}
	}

	v := postJob(t, srv.URL, svto.Request{
		Design: svto.DesignSpec{Bench: benchText(t, "api", 3, 8, 40), Name: "api"},
		Search: svto.SearchSpec{Penalty: 0.05, BaselineVectors: 100},
	})
	done := waitDone(t, srv.URL, v.ID, 60*time.Second)
	if len(done.Result) == 0 {
		t.Fatal("done job carries no result")
	}
	var res svto.Result
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.LeakNA <= 0 || res.BaselineNA <= res.LeakNA {
		t.Errorf("leak %v, baseline %v", res.LeakNA, res.BaselineNA)
	}

	csv := fetchArtifact(t, srv.URL, v.ID, "csv")
	if len(csv) == 0 {
		t.Error("empty csv artifact")
	}
	for _, kind := range []string{"verilog", "liberty", "report", "result"} {
		if len(fetchArtifact(t, srv.URL, v.ID, kind)) == 0 {
			t.Errorf("empty %s artifact", kind)
		}
	}

	// Listing includes the job; unknown jobs and kinds are 404s; deleting
	// a finished job purges it.
	resp, err := http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []jobs.View
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != v.ID {
		t.Errorf("list = %+v", list)
	}
	for path, want := range map[string]int{
		"/v1/jobs/nope":                      http.StatusNotFound,
		"/v1/jobs/" + v.ID + "/artifacts/gz": http.StatusNotFound,
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s: %s, want %d", path, resp.Status, want)
		}
	}
	cancelResp, err := http.Post(srv.URL+"/v1/jobs/"+v.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	cancelResp.Body.Close()
	if cancelResp.StatusCode != http.StatusConflict {
		t.Errorf("cancel finished job: %s, want 409", cancelResp.Status)
	}
	del := func(id string) int {
		t.Helper()
		req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := del(v.ID); code != http.StatusNoContent {
		t.Errorf("delete finished job: %d, want 204", code)
	}
	if code := del(v.ID); code != http.StatusNotFound {
		t.Errorf("delete deleted job: %d, want 404", code)
	}
	if resp, err := http.Get(srv.URL + "/v1/jobs/" + v.ID); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("get deleted job: %s, want 404", resp.Status)
		}
	}
}

// TestRestartResume exercises the durability protocol over the HTTP
// surface: stop the daemon mid-search, start a new one on the same state
// directory, and the job finishes with checkpoint-resume provenance.
func TestRestartResume(t *testing.T) {
	state := t.TempDir()
	cfg := jobs.Config{
		StateDir:           state,
		Concurrency:        1,
		CheckpointInterval: 25 * time.Millisecond,
	}
	mgr1, err := jobs.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(newHandler(mgr1, nil, dist.ChaosConfig{}, false))

	v := postJob(t, srv1.URL, svto.Request{
		Design: svto.DesignSpec{Bench: benchText(t, "restart", 11, 12, 90), Name: "restart"},
		Search: svto.SearchSpec{
			Algorithm:    svto.Heuristic2,
			Penalty:      0.05,
			Workers:      1,
			TimeLimitSec: 300,
		},
	})
	ckpt := filepath.Join(state, "jobs", v.ID+".ckpt")
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if got := getJob(t, srv1.URL, v.ID); got.Status.Terminal() {
			t.Fatalf("job finished before first checkpoint: %q", got.Status)
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv1.Close()
	if err := mgr1.Close(); err != nil {
		t.Fatal(err)
	}

	mgr2, err := jobs.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	srv2 := httptest.NewServer(newHandler(mgr2, nil, dist.ChaosConfig{}, false))
	defer srv2.Close()

	done := waitDone(t, srv2.URL, v.ID, 120*time.Second)
	if done.Resumes == 0 {
		t.Error("restarted job reports zero Resumes")
	}
	var res svto.Result
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Resumed || res.PriorRuntime <= 0 {
		t.Errorf("provenance: resumed %v prior %v", res.Resumed, res.PriorRuntime)
	}
	if len(fetchArtifact(t, srv2.URL, v.ID, "csv")) == 0 {
		t.Error("empty csv after resume")
	}
}
