// Command leakoptd serves standby-leakage optimization as a job API.
//
//	leakoptd -state /var/lib/leakoptd [-addr :8080]
//
// Endpoints:
//
//	POST   /v1/jobs                        submit a svto.Request (JSON)
//	GET    /v1/jobs                        list jobs, newest first
//	GET    /v1/jobs/{id}                   status + live progress / result
//	GET    /v1/jobs/{id}/artifacts/{kind}  verilog | liberty | csv | report |
//	                                       result | standby-bench
//	POST   /v1/jobs/{id}/cancel            cancel (204; 409 if finished)
//	DELETE /v1/jobs/{id}                   delete a non-running job and all
//	                                       its state — record, checkpoint,
//	                                       artifacts (204; 409 if running)
//	GET    /v1/stats                       queue depth, running-job search
//	                                       counters, baseline builds, shards
//	GET    /healthz                        liveness
//
// Jobs are durable: requests and checkpoints live under the state
// directory, and a restarted daemon adopts and resumes every job that was
// queued or in flight when the previous process died — gracefully (SIGTERM
// checkpoints each in-flight search before exiting) or not (SIGKILL; the
// last periodic snapshot is resumed instead).
//
// Cluster mode distributes each tree search across worker processes:
//
//	leakoptd -state /var/lib/leakoptd -cluster        # coordinator
//	leakoptd -shard -coordinator http://host:8080     # worker shard (xN)
//
// The coordinator additionally serves the shard wire protocol under
// /cluster/v1/ and shards jobs only while at least one worker is
// registered; shards hold no durable state and may be killed freely — the
// coordinator re-queues their leased tasks.  -debug mounts net/http/pprof
// under /debug/pprof/.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"svto/internal/dist"
	"svto/internal/jobs"
	"svto/pkg/svto"
)

// maxRequestBytes caps a job submission's JSON body: far above any real
// netlist request, far below anything that could exhaust memory.
const maxRequestBytes = 64 << 20

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		state    = flag.String("state", "", "state directory for durable jobs (required)")
		queue    = flag.Int("queue", 64, "max queued jobs before submissions are rejected")
		conc     = flag.Int("jobs", 2, "jobs executing concurrently")
		workers  = flag.Int("job-workers", 1, "per-job search worker cap (1 = deterministic); in -shard mode, this shard's local worker cap")
		maxTime  = flag.Duration("max-time", 15*time.Minute, "per-job search time cap")
		maxLeaf  = flag.Int64("max-leaves", 0, "per-job leaf budget cap (0 = uncapped)")
		interval = flag.Duration("checkpoint-interval", 5*time.Second, "snapshot cadence for tree searches")
		debug    = flag.Bool("debug", false, "mount net/http/pprof under /debug/pprof/")

		cluster   = flag.Bool("cluster", false, "coordinator mode: distribute tree searches across registered shards")
		shardMode = flag.Bool("shard", false, "shard mode: work for a coordinator instead of serving the job API")
		coordURL  = flag.String("coordinator", "", "coordinator base URL (required with -shard)")
		shardName = flag.String("shard-name", "", "shard name (default hostname-pid)")

		chaosSpec  = flag.String("chaos", "", `inject seeded network faults into this shard's outbound RPCs, e.g. "seed=7,drop=0.1,dup=0.1,delay=0.2,maxdelay=20ms" (testing only)`)
		chaosServe = flag.String("chaos-server", "", "inject seeded faults into the coordinator's cluster replies (testing only); same spec syntax as -chaos")
	)
	flag.Parse()

	if *shardMode {
		if *coordURL == "" {
			fmt.Fprintln(os.Stderr, "leakoptd: -shard requires -coordinator")
			flag.Usage()
			os.Exit(2)
		}
		cfg := dist.ShardConfig{
			Coordinator: *coordURL,
			Name:        *shardName,
			Workers:     *workers,
			Logf:        log.Printf,
		}
		if *chaosSpec != "" {
			chaos, err := dist.ParseChaosSpec(*chaosSpec)
			if err != nil {
				log.Fatalf("leakoptd: -chaos: %v", err)
			}
			ct := dist.NewChaosTransport(chaos, nil)
			cfg.Client = &http.Client{Transport: ct, Timeout: 30 * time.Second}
			defer func() { log.Printf("leakoptd: chaos injected: %s", dist.FormatChaosStats(ct.Stats())) }()
			log.Printf("leakoptd: shard transport chaos enabled: %q", *chaosSpec)
		}
		ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
		defer stop()
		if err := dist.RunShard(ctx, cfg); err != nil {
			log.Fatalf("leakoptd: %v", err)
		}
		log.Print("leakoptd: shard stopped, bye")
		return
	}

	if *state == "" {
		fmt.Fprintln(os.Stderr, "leakoptd: -state is required")
		flag.Usage()
		os.Exit(2)
	}

	var coord *dist.Coordinator
	if *cluster {
		coord = dist.New(dist.Config{Logf: log.Printf})
	}
	mgr, err := jobs.Open(jobs.Config{
		StateDir:           *state,
		QueueSize:          *queue,
		Concurrency:        *conc,
		JobWorkers:         *workers,
		MaxTimeLimit:       *maxTime,
		MaxLeaves:          *maxLeaf,
		CheckpointInterval: *interval,
		Cluster:            coord,
	})
	if err != nil {
		log.Fatalf("leakoptd: %v", err)
	}
	if orphans := mgr.Orphans(); len(orphans) > 0 {
		log.Printf("leakoptd: %d orphan snapshot(s) in state dir: %v", len(orphans), orphans)
	}

	var serverChaos dist.ChaosConfig
	if *chaosServe != "" {
		if coord == nil {
			log.Fatal("leakoptd: -chaos-server requires -cluster")
		}
		var perr error
		if serverChaos, perr = dist.ParseChaosSpec(*chaosServe); perr != nil {
			log.Fatalf("leakoptd: -chaos-server: %v", perr)
		}
		log.Printf("leakoptd: coordinator reply chaos enabled: %q", *chaosServe)
	}

	// Slowloris/resource hardening: bound how long a client may dribble
	// headers or a body and how long idle keep-alives are held.  No
	// WriteTimeout — artifact downloads and long GETs are legitimate.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           newHandler(mgr, coord, serverChaos, *debug),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Print("leakoptd: shutting down (checkpointing in-flight jobs)")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(shutCtx)
	}()

	log.Printf("leakoptd: serving on %s, state %s", *addr, *state)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("leakoptd: %v", err)
	}
	// Close after the listener stops: in-flight searches get canceled,
	// write their final snapshots, and persist as interrupted.
	if err := mgr.Close(); err != nil {
		log.Printf("leakoptd: close: %v", err)
	}
	log.Print("leakoptd: state checkpointed, bye")
}

// newHandler wires the job API onto a mux; separated from main so tests
// can serve a Manager through httptest.  coord (coordinator mode) mounts
// the shard wire protocol; debug mounts pprof.
func newHandler(mgr *jobs.Manager, coord *dist.Coordinator, serverChaos dist.ChaosConfig, debug bool) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})

	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, mgr.Stats())
	})

	if coord != nil {
		// Chaos (when configured) wraps only the cluster endpoints: the
		// shard protocol is built for a lossy network, the job API is not.
		mux.Handle(dist.APIPrefix+"/", dist.ChaosMiddleware(serverChaos, coord.Handler()))
	}
	if debug {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}

	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req svto.Request
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				httpError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("request body exceeds %d bytes", int64(maxRequestBytes)))
				return
			}
			httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		v, err := mgr.Submit(req)
		switch {
		case errors.Is(err, jobs.ErrQueueFull):
			httpError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, jobs.ErrClosed):
			httpError(w, http.StatusServiceUnavailable, err)
		case err != nil:
			httpError(w, http.StatusBadRequest, err)
		default:
			writeJSON(w, http.StatusCreated, v)
		}
	})

	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, mgr.List())
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, err := mgr.Get(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, v)
	})

	mux.HandleFunc("GET /v1/jobs/{id}/artifacts/{kind}", func(w http.ResponseWriter, r *http.Request) {
		path, err := mgr.Artifact(r.PathValue("id"), r.PathValue("kind"))
		switch {
		case errors.Is(err, jobs.ErrNotFound):
			httpError(w, http.StatusNotFound, err)
		case errors.Is(err, jobs.ErrNoArtifact):
			httpError(w, http.StatusNotFound, err)
		case err != nil:
			httpError(w, http.StatusInternalServerError, err)
		default:
			http.ServeFile(w, r, path)
		}
	})

	mux.HandleFunc("POST /v1/jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		err := mgr.Cancel(r.PathValue("id"))
		switch {
		case errors.Is(err, jobs.ErrNotFound):
			httpError(w, http.StatusNotFound, err)
		case errors.Is(err, jobs.ErrFinished):
			httpError(w, http.StatusConflict, err)
		case err != nil:
			httpError(w, http.StatusInternalServerError, err)
		default:
			w.WriteHeader(http.StatusNoContent)
		}
	})

	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		err := mgr.Delete(r.PathValue("id"))
		switch {
		case errors.Is(err, jobs.ErrNotFound):
			httpError(w, http.StatusNotFound, err)
		case errors.Is(err, jobs.ErrRunning):
			httpError(w, http.StatusConflict, err)
		case err != nil:
			httpError(w, http.StatusInternalServerError, err)
		default:
			w.WriteHeader(http.StatusNoContent)
		}
	})

	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
