// Command benchgen emits the generated benchmark circuits in ISCAS .bench
// format, so they can be inspected, archived, or fed back through leakopt
// -in (or any other .bench consumer).
//
// Usage:
//
//	benchgen -out ./benchmarks            # write all eleven circuits
//	benchgen -name c6288 -out .           # just the multiplier
//	benchgen -stats                       # print sizes without writing
//	benchgen -random smoke:7:14:150 -out . # seeded random circuit
//	benchgen -random fuzz:14:150 -out .    # fresh seed, recorded in the header
//	benchgen -random fuzz:14:150 -seed 99 -out . # replay a recorded seed
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"strconv"
	"strings"

	"svto/internal/gen"
	"svto/internal/netlist"
	"svto/internal/verilog"
)

func main() {
	var (
		out    = flag.String("out", "", "output directory for netlist files")
		name   = flag.String("name", "", "emit a single named benchmark")
		random = flag.String("random", "", "emit a random circuit: name:seed:inputs:gates, or name:inputs:gates with a fresh (or -seed) seed")
		seed   = flag.Int64("seed", 0, "random-circuit seed override; replays the seed recorded in a generated netlist's header")
		stats  = flag.Bool("stats", false, "print circuit statistics")
		format = flag.String("format", "bench", "output format: bench | verilog")
	)
	flag.Parse()
	seedSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seedSet = true
		}
	})
	if *out == "" && !*stats {
		flag.Usage()
		os.Exit(2)
	}

	if *random != "" {
		if err := emitRandom(*random, *seed, seedSet, *out, *format, *stats); err != nil {
			fatal(err)
		}
		return
	}
	if seedSet {
		fatal(fmt.Errorf("-seed only applies to -random circuits"))
	}

	profiles := gen.Benchmarks()
	if *name != "" {
		p, err := gen.ByName(*name)
		if err != nil {
			fatal(err)
		}
		profiles = []gen.Profile{p}
	}
	if *stats {
		fmt.Printf("%-8s %8s %8s %8s %8s %8s %6s\n", "name", "inputs", "outputs", "gates", "paperIn", "paperG", "depth")
	}
	for _, p := range profiles {
		c, err := p.Build()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", p.Name, err))
		}
		if *stats {
			st, err := c.Stats()
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-8s %8d %8d %8d %8d %8d %6d\n",
				p.Name, st.Inputs, st.Outputs, st.Gates, p.PaperInputs, p.PaperGates, st.Depth)
		}
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fatal(err)
			}
			ext, write := ".bench", netlist.WriteBench
			if *format == "verilog" {
				ext, write = ".v", verilog.Write
			} else if *format != "bench" {
				fatal(fmt.Errorf("unknown format %q", *format))
			}
			path := filepath.Join(*out, p.Name+ext)
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := write(f, c); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
}

// emitRandom builds a seeded random circuit described as
// "name:seed:inputs:gates" (or "name:inputs:gates", seeding from the -seed
// flag or, failing that, the clock) and writes it like the named
// benchmarks, recording the generating command in the netlist header so a
// failing fuzz or benchmark circuit can always be regenerated.
func emitRandom(spec string, seed int64, seedSet bool, out, format string, stats bool) error {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 && len(parts) != 4 {
		return fmt.Errorf("-random wants name:seed:inputs:gates or name:inputs:gates, got %q", spec)
	}
	name := parts[0]
	nums := make([]int64, len(parts)-1)
	for i, p := range parts[1:] {
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return fmt.Errorf("-random %q: %w", spec, err)
		}
		nums[i] = v
	}
	var inputs, gates int64
	switch {
	case len(parts) == 4 && seedSet:
		return fmt.Errorf("-random %q already names a seed; drop the -seed flag or the seed field", spec)
	case len(parts) == 4:
		seed, inputs, gates = nums[0], nums[1], nums[2]
	default:
		inputs, gates = nums[0], nums[1]
		if !seedSet {
			seed = time.Now().UnixNano()
		}
	}
	c, err := gen.RandomLogic(name, seed, int(inputs), int(gates))
	if err != nil {
		return err
	}
	if stats {
		st, err := c.Stats()
		if err != nil {
			return err
		}
		fmt.Printf("%-8s seed %d %8d %8d %8d %6d\n", name, seed, st.Inputs, st.Outputs, st.Gates, st.Depth)
	}
	if out == "" {
		return nil
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	ext, write, comment := ".bench", netlist.WriteBench, "#"
	if format == "verilog" {
		ext, write, comment = ".v", verilog.Write, "//"
	} else if format != "bench" {
		return fmt.Errorf("unknown format %q", format)
	}
	path := filepath.Join(out, name+ext)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	// Provenance first, then the regular netlist: the recorded command
	// regenerates this exact circuit.
	if _, err := fmt.Fprintf(f, "%s benchgen -random %s:%d:%d -seed %d\n",
		comment, name, inputs, gates, seed); err != nil {
		f.Close()
		return err
	}
	if err := write(f, c); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (seed %d)\n", path, seed)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgen:", err)
	os.Exit(1)
}
