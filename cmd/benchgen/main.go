// Command benchgen emits the generated benchmark circuits in ISCAS .bench
// format, so they can be inspected, archived, or fed back through leakopt
// -in (or any other .bench consumer).
//
// Usage:
//
//	benchgen -out ./benchmarks            # write all eleven circuits
//	benchgen -name c6288 -out .           # just the multiplier
//	benchgen -stats                       # print sizes without writing
//	benchgen -random smoke:7:14:150 -out . # seeded random circuit
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"strconv"
	"strings"

	"svto/internal/gen"
	"svto/internal/netlist"
	"svto/internal/verilog"
)

func main() {
	var (
		out    = flag.String("out", "", "output directory for netlist files")
		name   = flag.String("name", "", "emit a single named benchmark")
		random = flag.String("random", "", "emit a random circuit: name:seed:inputs:gates")
		stats  = flag.Bool("stats", false, "print circuit statistics")
		format = flag.String("format", "bench", "output format: bench | verilog")
	)
	flag.Parse()
	if *out == "" && !*stats {
		flag.Usage()
		os.Exit(2)
	}

	if *random != "" {
		if err := emitRandom(*random, *out, *format, *stats); err != nil {
			fatal(err)
		}
		return
	}

	profiles := gen.Benchmarks()
	if *name != "" {
		p, err := gen.ByName(*name)
		if err != nil {
			fatal(err)
		}
		profiles = []gen.Profile{p}
	}
	if *stats {
		fmt.Printf("%-8s %8s %8s %8s %8s %8s %6s\n", "name", "inputs", "outputs", "gates", "paperIn", "paperG", "depth")
	}
	for _, p := range profiles {
		c, err := p.Build()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", p.Name, err))
		}
		if *stats {
			st, err := c.Stats()
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-8s %8d %8d %8d %8d %8d %6d\n",
				p.Name, st.Inputs, st.Outputs, st.Gates, p.PaperInputs, p.PaperGates, st.Depth)
		}
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fatal(err)
			}
			ext, write := ".bench", netlist.WriteBench
			if *format == "verilog" {
				ext, write = ".v", verilog.Write
			} else if *format != "bench" {
				fatal(fmt.Errorf("unknown format %q", *format))
			}
			path := filepath.Join(*out, p.Name+ext)
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := write(f, c); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
}

// emitRandom builds a seeded random circuit described as
// "name:seed:inputs:gates" and writes it like the named benchmarks.
func emitRandom(spec, out, format string, stats bool) error {
	parts := strings.Split(spec, ":")
	if len(parts) != 4 {
		return fmt.Errorf("-random wants name:seed:inputs:gates, got %q", spec)
	}
	name := parts[0]
	nums := make([]int64, 3)
	for i, p := range parts[1:] {
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return fmt.Errorf("-random %q: %w", spec, err)
		}
		nums[i] = v
	}
	c, err := gen.RandomLogic(name, nums[0], int(nums[1]), int(nums[2]))
	if err != nil {
		return err
	}
	if stats {
		st, err := c.Stats()
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %8d %8d %8d %6d\n", name, st.Inputs, st.Outputs, st.Gates, st.Depth)
	}
	if out == "" {
		return nil
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	ext, write := ".bench", netlist.WriteBench
	if format == "verilog" {
		ext, write = ".v", verilog.Write
	} else if format != "bench" {
		return fmt.Errorf("unknown format %q", format)
	}
	path := filepath.Join(out, name+ext)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f, c); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgen:", err)
	os.Exit(1)
}
