package main

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// readFile loads a generated netlist and returns its full text.
func readFile(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestEmitRandomRecordsSeed is the reproducibility contract: a seedless
// -random run records its drawn seed as the first header comment, and
// replaying that seed through -seed regenerates a byte-identical netlist.
func TestEmitRandomRecordsSeed(t *testing.T) {
	dir := t.TempDir()
	if err := emitRandom("fuzzcase:9:30", 0, false, dir, "bench", false); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "fuzzcase.bench")
	first := readFile(t, path)

	sc := bufio.NewScanner(strings.NewReader(first))
	if !sc.Scan() {
		t.Fatal("empty netlist")
	}
	header := sc.Text()
	re := regexp.MustCompile(`^# benchgen -random fuzzcase:9:30 -seed (-?\d+)$`)
	m := re.FindStringSubmatch(header)
	if m == nil {
		t.Fatalf("header %q does not record the generating command", header)
	}
	seed, err := strconv.ParseInt(m[1], 10, 64)
	if err != nil {
		t.Fatal(err)
	}

	// Replay into a second directory: same bytes.
	replay := t.TempDir()
	if err := emitRandom("fuzzcase:9:30", seed, true, replay, "bench", false); err != nil {
		t.Fatal(err)
	}
	second := readFile(t, filepath.Join(replay, "fuzzcase.bench"))
	if first != second {
		t.Error("replaying the recorded seed did not reproduce the netlist")
	}

	// The explicit 4-part spec is the same circuit again.
	explicit := t.TempDir()
	if err := emitRandom(fmt.Sprintf("fuzzcase:%d:9:30", seed), 0, false, explicit, "bench", false); err != nil {
		t.Fatal(err)
	}
	third := readFile(t, filepath.Join(explicit, "fuzzcase.bench"))
	if first != third {
		t.Error("name:seed:inputs:gates spec did not reproduce the -seed netlist")
	}
}

// Conflicting seed specifications are rejected, as are malformed specs.
func TestEmitRandomRejectsBadSpecs(t *testing.T) {
	dir := t.TempDir()
	if err := emitRandom("x:1:9:30", 1, true, dir, "bench", false); err == nil {
		t.Error("explicit seed field plus -seed flag accepted")
	}
	for _, spec := range []string{"x", "x:1", "x:1:2:3:4", "x:a:9:30"} {
		if err := emitRandom(spec, 0, false, dir, "bench", false); err == nil {
			t.Errorf("malformed spec %q accepted", spec)
		}
	}
}

// Two seedless runs must (virtually always) draw different seeds — the
// whole point of recording them.
func TestEmitRandomDrawsFreshSeeds(t *testing.T) {
	a, b := t.TempDir(), t.TempDir()
	if err := emitRandom("fresh:8:20", 0, false, a, "bench", false); err != nil {
		t.Fatal(err)
	}
	if err := emitRandom("fresh:8:20", 0, false, b, "bench", false); err != nil {
		t.Fatal(err)
	}
	ha := readFile(t, filepath.Join(a, "fresh.bench"))
	hb := readFile(t, filepath.Join(b, "fresh.bench"))
	la, _, _ := strings.Cut(ha, "\n")
	lb, _, _ := strings.Cut(hb, "\n")
	if la == lb {
		t.Errorf("two seedless runs recorded the same seed: %q", la)
	}
}
